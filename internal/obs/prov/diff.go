package prov

import (
	"fmt"
	"io"

	"asdsim/internal/mem"
)

// The diff engine attributes an outcome delta between two runs to the
// decision-level divergences recorded in their provenance streams: the
// first SLH epoch whose tables differ (everything before it is
// decision-identical by construction), and per-stream-length deltas in
// what was nominated, issued and how it ended.

// maxDiffLen is the highest stream length bucketed individually; longer
// streams fold into the final overflow bucket.
const maxDiffLen = 16

// LengthTally counts one run's lineage stages attributed to one stream
// length k (the length at decision time).
type LengthTally struct {
	K         int    `json:"k"`
	Decisions uint64 `json:"decisions,omitempty"`
	Nominates uint64 `json:"nominates,omitempty"`
	Drops     uint64 `json:"drops,omitempty"`
	Issues    uint64 `json:"issues,omitempty"`
	Installs  uint64 `json:"installs,omitempty"`
	PBHits    uint64 `json:"pb_hits,omitempty"`
	Late      uint64 `json:"late,omitempty"`
	Wasted    uint64 `json:"wasted,omitempty"`
}

func (t *LengthTally) any() bool {
	return t.Decisions|t.Nominates|t.Drops|t.Issues|t.Installs|t.PBHits|t.Late|t.Wasted != 0
}

// LengthDelta pairs one stream length's tallies from both runs.
type LengthDelta struct {
	K int         `json:"k"`
	A LengthTally `json:"a"`
	B LengthTally `json:"b"`
}

// DiffReport is the result of diffing two provenance streams. The
// cycles/IPC fields are zero unless the caller fills them from stored
// outcomes before rendering.
type DiffReport struct {
	TraceA, TraceB string

	// FirstDiverge is the index (within the thread-0 snapshot sequence)
	// of the first epoch whose LHT tables differ between the runs; -1
	// when every comparable snapshot matches. DivergeA/DivergeB are the
	// diverging pair when FirstDiverge >= 0.
	FirstDiverge int
	DivergeA     *EpochSnap
	DivergeB     *EpochSnap
	// SnapsA/SnapsB count the thread-0 snapshots compared.
	SnapsA, SnapsB int

	Lengths []LengthDelta

	// Caller-supplied outcome context (optional).
	CyclesA, CyclesB uint64
	IPCA, IPCB       float64
}

// lengthBucket clamps a stream length into a tally index.
func lengthBucket(k int64) int {
	if k < 1 {
		return 1
	}
	if k > maxDiffLen {
		return maxDiffLen
	}
	return int(k)
}

// tallyLengths attributes s's records to stream lengths. Decisions and
// their same-cycle nominations/drops carry k directly; later lifecycle
// stages are attributed through the line the most recent nomination for
// it belonged to.
func tallyLengths(s *Stream) [maxDiffLen + 1]LengthTally {
	var out [maxDiffLen + 1]LengthTally
	lineK := make(map[mem.Line]int, 1024)
	for _, r := range s.Records {
		switch r.Op {
		case OpDecision:
			out[lengthBucket(r.V1)].Decisions++
		case OpNominate:
			k := lengthBucket(r.V3)
			out[k].Nominates++
			lineK[r.Line] = k
		case OpDrop:
			if r.V3 > 0 {
				out[lengthBucket(r.V3)].Drops++
			} else if k, ok := lineK[r.Line]; ok {
				out[k].Drops++
			} else {
				out[1].Drops++
			}
		case OpIssue:
			out[lookupK(lineK, r.Line)].Issues++
		case OpInstall:
			out[lookupK(lineK, r.Line)].Installs++
		case OpPBHit:
			out[lookupK(lineK, r.Line)].PBHits++
		case OpLate:
			out[lookupK(lineK, r.Line)].Late++
		case OpWasted:
			out[lookupK(lineK, r.Line)].Wasted++
		case OpEpochRoll, OpSlotBirth, OpSlotExtend, OpSlotEnd:
			// Not per-prefetch stages.
		}
	}
	for k := range out {
		out[k].K = k
	}
	return out
}

func lookupK(lineK map[mem.Line]int, l mem.Line) int {
	if k, ok := lineK[l]; ok {
		return k
	}
	return 1
}

// thread0Snaps filters a stream's snapshots to thread 0, the diff's
// comparison spine (all threads share the tables' epoch cadence; thread
// 0 is the stable representative).
func thread0Snaps(s *Stream) []*EpochSnap {
	var out []*EpochSnap
	for i := range s.Epochs {
		if s.Epochs[i].Thread == 0 {
			out = append(out, &s.Epochs[i])
		}
	}
	return out
}

func tablesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func snapsEqual(a, b *EpochSnap) bool {
	return tablesEqual(a.UpCurr, b.UpCurr) && tablesEqual(a.UpNext, b.UpNext) &&
		tablesEqual(a.DownCurr, b.DownCurr) && tablesEqual(a.DownNext, b.DownNext)
}

// Diff compares two provenance streams: the first diverging SLH epoch
// and the per-stream-length lifecycle deltas.
func Diff(a, b *Stream) *DiffReport {
	rep := &DiffReport{TraceA: a.TraceID, TraceB: b.TraceID, FirstDiverge: -1}

	sa, sb := thread0Snaps(a), thread0Snaps(b)
	rep.SnapsA, rep.SnapsB = len(sa), len(sb)
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	for i := 0; i < n; i++ {
		if !snapsEqual(sa[i], sb[i]) {
			rep.FirstDiverge = i
			rep.DivergeA, rep.DivergeB = sa[i], sb[i]
			break
		}
	}

	ta, tb := tallyLengths(a), tallyLengths(b)
	for k := 1; k <= maxDiffLen; k++ {
		if ta[k].any() || tb[k].any() {
			rep.Lengths = append(rep.Lengths, LengthDelta{K: k, A: ta[k], B: tb[k]})
		}
	}
	return rep
}

// delta renders a signed difference, omitting zero.
func delta(name string, a, b uint64) string {
	if a == b {
		return ""
	}
	return fmt.Sprintf(" %s%+d", name, int64(b)-int64(a))
}

// WriteReport renders the diff. The labels ("first diverging SLH
// epoch", "per-stream-length deltas") are stable — tests and CI grep
// them.
func (rep *DiffReport) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "provenance diff: A=%s B=%s\n", rep.TraceA, rep.TraceB)
	if rep.CyclesA != 0 || rep.CyclesB != 0 {
		fmt.Fprintf(w, "cycles: A=%d B=%d (%+d)\n",
			rep.CyclesA, rep.CyclesB, int64(rep.CyclesB)-int64(rep.CyclesA))
	}
	if rep.IPCA != 0 || rep.IPCB != 0 {
		fmt.Fprintf(w, "ipc: A=%.4f B=%.4f (%+.4f)\n", rep.IPCA, rep.IPCB, rep.IPCB-rep.IPCA)
	}
	switch {
	case rep.FirstDiverge >= 0:
		a, b := rep.DivergeA, rep.DivergeB
		fmt.Fprintf(w, "first diverging SLH epoch: %d (A epoch %d @cycle %d, B epoch %d @cycle %d)\n",
			rep.FirstDiverge, a.Epoch, a.Cycle, b.Epoch, b.Cycle)
		if !tablesEqual(a.UpNext, b.UpNext) {
			fmt.Fprintf(w, "  up LHT   A=%s\n           B=%s\n", fmtTable(a.UpNext), fmtTable(b.UpNext))
		}
		if !tablesEqual(a.DownNext, b.DownNext) {
			fmt.Fprintf(w, "  down LHT A=%s\n           B=%s\n", fmtTable(a.DownNext), fmtTable(b.DownNext))
		}
	case rep.SnapsA != rep.SnapsB:
		fmt.Fprintf(w, "first diverging SLH epoch: none in the common prefix (A recorded %d snapshots, B %d)\n",
			rep.SnapsA, rep.SnapsB)
	default:
		fmt.Fprintf(w, "first diverging SLH epoch: none (all %d snapshots identical)\n", rep.SnapsA)
	}

	fmt.Fprintf(w, "per-stream-length deltas (B - A):\n")
	any := false
	for _, d := range rep.Lengths {
		line := delta("decisions", d.A.Decisions, d.B.Decisions) +
			delta("nominates", d.A.Nominates, d.B.Nominates) +
			delta("drops", d.A.Drops, d.B.Drops) +
			delta("issues", d.A.Issues, d.B.Issues) +
			delta("installs", d.A.Installs, d.B.Installs) +
			delta("pb-hits", d.A.PBHits, d.B.PBHits) +
			delta("late", d.A.Late, d.B.Late) +
			delta("wasted", d.A.Wasted, d.B.Wasted)
		if line == "" {
			continue
		}
		any = true
		label := fmt.Sprintf("k=%d", d.K)
		if d.K == maxDiffLen {
			label = fmt.Sprintf("k>=%d", maxDiffLen)
		}
		fmt.Fprintf(w, "  %s:%s\n", label, line)
	}
	if !any {
		fmt.Fprintf(w, "  (no per-length differences)\n")
	}
}
