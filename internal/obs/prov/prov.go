// Package prov is the simulator's prefetch-provenance layer: a
// deterministic, perturbation-free recorder of the full causal lineage
// behind every prefetch the ASD machinery issues — SLH epoch roll (with
// the LHTcurr/LHTnext snapshot that decided the epoch), stream-filter
// slot lifetime (birth, confirmations, direction, eviction), the
// inequality (5)/(6) decision itself, LPQ nomination/admission/drop,
// DRAM issue, Prefetch Buffer install, and the final outcome (PB hit,
// late, wasted, invalidated).
//
// Records live in a drop-oldest ring of fixed-size structs and carry
// content-derived IDs (FNV-64a over trace ID, op and sequence — the
// same discipline as internal/obs/span), so a stream re-recorded from
// the same deterministic run is byte-identical wherever it runs. The
// Recorder is an obs.Sink for the MC-side lifecycle events and exposes
// direct nil-guarded hooks for the richer ASD-side detail (decision
// witnesses, epoch snapshots, slot lifecycles) that the generic event
// vocabulary cannot carry.
//
// Like every telemetry layer in this tree, recording must not perturb
// the simulation: no locks, no goroutines, no wall clock, no
// allocation on the per-event path (the epoch-snapshot hook allocates,
// but only at the once-per-2000-reads epoch roll, off the per-cycle
// path). TestProvenanceDoesNotPerturbOutcomes pins the contract
// bit-for-bit.
package prov

import (
	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/slh"
)

// Op enumerates the lineage stages a Record can describe.
type Op uint8

const (
	// OpEpochRoll marks an SLH epoch boundary. V1 is the completed-epoch
	// count after the roll; the matching EpochSnap holds the tables.
	OpEpochRoll Op = iota
	// OpSlotBirth: a stream-filter slot was allocated for Line.
	OpSlotBirth
	// OpSlotExtend: a Read confirmed the stream (length grew, or a
	// length-1 slot flipped direction). Line is the new head; V1 the new
	// length; Aux the direction (see EncodeDir).
	OpSlotExtend
	// OpSlotEnd: the slot left the filter (lifetime expiry or epoch
	// flush) and its stream fed the SLH. Line is the final head; V1 the
	// final length; Aux the direction.
	OpSlotEnd
	// OpDecision: inequality (5)/(6) fired on a tracked Read at Line.
	// V1 = stream length k, V2 = chosen degree m, V3 packs the witness
	// values lht(k) (low 32 bits) and lht(k+m) (high 32 bits), Aux
	// encodes which inequality fired and which direction table decided
	// (see DecisionAux).
	OpDecision
	// OpNominate: a prefetch for Line entered the LPQ. V1 = depth,
	// V2 = ID of the causing OpDecision record, V3 = stream length k.
	OpNominate
	// OpDrop: a nomination or queued prefetch for Line was dropped.
	// V1 = depth, Aux = the obs.DropCause, and for nomination-time drops
	// V2/V3 link the causing decision like OpNominate.
	OpDrop
	// OpIssue: the Final Scheduler issued the LPQ head to DRAM.
	// V1 = depth, V2 = predicted completion cycle.
	OpIssue
	// OpInstall: the completed prefetch was installed into the PB.
	// V1 = depth.
	OpInstall
	// OpPBHit: a demand Read was satisfied by the PB. V1 = depth;
	// Aux = 1 when it was the late CAQ-head check.
	OpPBHit
	// OpLate: the prefetch completed with demand Reads already merged
	// onto it — useful but late. V1 = depth, V2 = waiters.
	OpLate
	// OpWasted: the PB line was discarded unused. V1 = depth, Aux = 0
	// for LRU eviction, 1 for write invalidation.
	OpWasted

	numOps
)

//asd:exhaustive
var opNames = [numOps]string{
	"epoch-roll", "slot-birth", "slot-extend", "slot-end", "decision",
	"nominate", "drop", "issue", "install", "pb-hit", "late", "wasted",
}

// NumOps is the number of defined lineage ops.
const NumOps = int(numOps)

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// DecisionAux packs an OpDecision's Aux byte: the inequality number in
// the low 7 bits (5 when degree 1, 6 for multi-line) and the descending
// table in the top bit.
func DecisionAux(down bool, degree int) uint8 {
	aux := uint8(5)
	if degree > 1 {
		aux = 6
	}
	if down {
		aux |= decisionDownBit
	}
	return aux
}

const decisionDownBit = 0x80

// DecodeDecisionAux splits an OpDecision Aux byte.
func DecodeDecisionAux(aux uint8) (down bool, ineq int) {
	return aux&decisionDownBit != 0, int(aux &^ decisionDownBit)
}

// PackWitness packs the two lht values an OpDecision compared into V3.
func PackWitness(lhtK, lhtKm uint32) int64 {
	return int64(lhtK) | int64(lhtKm)<<32
}

// UnpackWitness recovers lht(k) and lht(k+m) from an OpDecision's V3.
func UnpackWitness(v3 int64) (lhtK, lhtKm uint32) {
	return uint32(uint64(v3)), uint32(uint64(v3) >> 32)
}

// EncodeDir maps a stream direction to a slot record's Aux byte.
func EncodeDir(dir int8) uint8 {
	if dir < 0 {
		return 1
	}
	return 0
}

// DecodeDir is EncodeDir's inverse, returning +1 or -1.
func DecodeDir(aux uint8) int {
	if aux == 1 {
		return -1
	}
	return 1
}

// Record is one compact lineage entry. Cycle is in CPU cycles; Epoch is
// the number of completed SLH epoch rolls on the record's thread at
// record time (so a Record with Epoch = N was decided by the tables the
// roll with EpochSnap.Epoch == N installed). ID is content-derived and
// never zero; the op-specific fields are documented on each Op.
type Record struct {
	Op     Op       `json:"op"`
	Aux    uint8    `json:"aux,omitempty"`
	Thread int32    `json:"thread,omitempty"`
	Epoch  uint32   `json:"epoch"`
	Cycle  uint64   `json:"cycle"`
	Line   mem.Line `json:"line,omitempty"`
	ID     uint64   `json:"id"`
	V1     int64    `json:"v1,omitempty"`
	V2     int64    `json:"v2,omitempty"`
	V3     int64    `json:"v3,omitempty"`
}

// EpochSnap is the LHT snapshot captured at one SLH epoch roll, after
// the stream filter's flush folded live streams in but before the
// Curr/Next rollover: Curr is the table that decided the epoch that
// just ended, Next is what EpochEnd installs for the epoch that begins.
// Epoch is the completed-roll count the boundary established — records
// stamped Epoch == N were decided by this snapshot's Next tables.
type EpochSnap struct {
	Thread   int32    `json:"thread,omitempty"`
	Epoch    uint32   `json:"epoch"`
	Cycle    uint64   `json:"cycle"`
	UpCurr   []uint32 `json:"up_curr"`
	UpNext   []uint32 `json:"up_next"`
	DownCurr []uint32 `json:"down_curr"`
	DownNext []uint32 `json:"down_next"`
}

// Stream is one run's flushed provenance: the surviving ring records in
// firing order plus every epoch snapshot. Dropped counts ring records
// lost to wrap-around (the oldest are discarded first).
type Stream struct {
	TraceID string      `json:"trace_id"`
	Dropped uint64      `json:"dropped,omitempty"`
	Records []Record    `json:"-"`
	Epochs  []EpochSnap `json:"-"`
}

// Options tunes a Recorder; the zero value means defaults.
type Options struct {
	// TraceID seeds the content-derived record IDs; use
	// span.TraceIDFromKey(spec key) under the farm, or any stable label.
	TraceID string
	// RingSize bounds retained records, rounded up to a power of two
	// (default 1 << 15 ≈ 2.5 MB of records).
	RingSize int
	// MaxEpochs bounds retained epoch snapshots (default 4096); later
	// rolls keep their ring records but drop the table snapshot.
	MaxEpochs int
}

// maxThreads bounds the per-thread epoch counters (SMT-2 today; sized
// ahead for the roadmap's SMT-4/8 lift).
const maxThreads = 8

// lastDecision lets nomination-time records link to the OpDecision that
// caused them: the engine's decision and the MC's nominations for it
// fire at the same CPU cycle, in order, on the one simulation goroutine.
type lastDecision struct {
	ok     bool
	thread int32
	cycle  uint64
	id     uint64
	k      int64
}

// Recorder captures one run's provenance. It is driven from the run's
// single simulation goroutine (like every obs sink) and must never be
// shared across concurrent runs.
type Recorder struct {
	traceID string
	idSeed  uint64 // FNV-64a of traceID, the precomputed deriveID prefix
	// ring starts small and doubles up to ringCap as records arrive, so
	// an idle or low-traffic run never pays for (or cache-thrashes with)
	// the full window; wrap-around discarding begins only at ringCap.
	ring    []Record
	ringCap int
	head    uint64 // total records pushed; ring index is head & (len-1)
	seq     uint64

	epochs    []EpochSnap
	maxEpochs int

	curEpoch [maxThreads]uint32
	lastDec  lastDecision
	counts   [numOps]uint64
}

// New returns a Recorder with the given options.
func New(opts Options) *Recorder {
	size := opts.RingSize
	if size <= 0 {
		size = 1 << 15
	}
	// Round up to a power of two so the ring index is a mask.
	n := 1
	for n < size {
		n <<= 1
	}
	maxEpochs := opts.MaxEpochs
	if maxEpochs <= 0 {
		maxEpochs = 4096
	}
	seed := uint64(fnvOffset64)
	for i := 0; i < len(opts.TraceID); i++ {
		seed = (seed ^ uint64(opts.TraceID[i])) * fnvPrime64
	}
	return &Recorder{
		traceID:   opts.TraceID,
		idSeed:    seed,
		ring:      make([]Record, min(n, initialRing)),
		ringCap:   n,
		maxEpochs: maxEpochs,
	}
}

// initialRing is the ring's starting size (64 KB of records): small
// enough not to disturb the simulator's cache working set, large enough
// that most short runs never grow.
const initialRing = 1 << 10

// TraceID returns the recorder's trace identity.
func (r *Recorder) TraceID() string { return r.traceID }

// Count returns how many records of op were pushed (including any the
// ring has since dropped).
func (r *Recorder) Count(op Op) uint64 {
	if r == nil || int(op) >= len(r.counts) {
		return 0
	}
	return r.counts[op]
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// deriveID mixes (traceID, op, seq) into a content-derived record ID
// and never returns zero. The trace-ID prefix is folded once at
// construction (idSeed); per record three multiplies and an xorshift
// remain — every step is bijective in seq for a fixed (seed, op), so
// IDs are collision-free within an op's sequence, and the whole chain
// is deterministic for replay. Cheap enough to inline on the
// simulation hot path.
func (r *Recorder) deriveID(op Op, seq uint64) uint64 {
	h := (r.idSeed ^ uint64(op)) * fnvPrime64
	h = (h ^ seq) * fnvPrime64
	h ^= h >> 32
	h *= fnvPrime64
	if h == 0 {
		h = 1
	}
	return h
}

// push stamps, IDs and ring-writes one record, returning its ID.
func (r *Recorder) push(rec Record) uint64 {
	p := r.next(rec.Op, rec.Thread)
	rec.ID = p.ID
	rec.Epoch = p.Epoch
	*p = rec
	return rec.ID
}

// next reserves the ring entry for an (op, thread) record that just
// fired: it advances the sequence, stamps the content-derived ID and
// the thread's current epoch, and returns the entry for the caller to
// finish filling in place. Hot paths use it directly so a record is
// written exactly once, into the ring, with no intermediate copies; the
// pointer is only valid until the next reservation.
func (r *Recorder) next(op Op, thread int32) *Record {
	r.seq++
	r.counts[op]++
	if int(r.head) == len(r.ring) && len(r.ring) < r.ringCap {
		r.grow()
	}
	rec := &r.ring[int(r.head)&(len(r.ring)-1)]
	r.head++
	*rec = Record{Op: op, Thread: thread,
		Epoch: r.curEpoch[int(thread)&(maxThreads-1)],
		ID:    r.deriveID(op, r.seq)}
	return rec
}

// grow enlarges the ring before the first wrap. Kept out of push so the
// hot path stays within the inlining budget. No wrap has happened yet
// (head <= len), so the live records sit contiguously at [0:head) and a
// plain copy preserves order. Quadrupling (not doubling) keeps total
// alloc+copy traffic for a run that fills the ring near 1.3x the final
// size instead of 2x.
func (r *Recorder) grow() {
	grown := make([]Record, min(4*len(r.ring), r.ringCap))
	copy(grown, r.ring)
	r.ring = grown
}

// linkDecision attaches the causing decision to a nomination-time
// record when it fired at the same cycle (V2 = decision ID, V3 = stream
// length), inheriting the deciding thread.
func (r *Recorder) linkDecision(rec *Record) {
	if r.lastDec.ok && r.lastDec.cycle == rec.Cycle {
		rec.V2 = int64(r.lastDec.id)
		rec.V3 = r.lastDec.k
		rec.Thread = r.lastDec.thread
	}
}

// Emit implements obs.Sink: the MC-side prefetch lifecycle events are
// mapped into lineage records; everything else is intentionally
// ignored (the ASD-side stages arrive through the richer direct hooks).
//
//asd:hotpath
func (r *Recorder) Emit(e obs.Event) {
	if r == nil {
		return
	}
	//asd:exhaustive
	switch e.Kind {
	case obs.KindMCPFNominate:
		rec := r.next(OpNominate, e.Thread)
		rec.Cycle, rec.Line, rec.V1 = e.Cycle, e.Line, e.V1
		r.linkDecision(rec)
	case obs.KindMCPFDrop:
		rec := r.next(OpDrop, e.Thread)
		rec.Cycle, rec.Line, rec.Aux, rec.V1 = e.Cycle, e.Line, uint8(e.V2), e.V1
		// Only nomination-path drops share the decision's cycle by
		// construction; queue-time drops must not inherit a link.
		if obs.DropCause(e.V2).AtNomination() {
			r.linkDecision(rec)
		}
	case obs.KindMCPFIssue:
		rec := r.next(OpIssue, e.Thread)
		rec.Cycle, rec.Line, rec.V1, rec.V2 = e.Cycle, e.Line, e.V1, e.V2
	case obs.KindMCPFInstall:
		rec := r.next(OpInstall, e.Thread)
		rec.Cycle, rec.Line, rec.V1 = e.Cycle, e.Line, e.V1
	case obs.KindMCPBHit:
		rec := r.next(OpPBHit, e.Thread)
		rec.Cycle, rec.Line, rec.Aux, rec.V1 = e.Cycle, e.Line, uint8(e.V1), e.V2
	case obs.KindMCPFLate:
		rec := r.next(OpLate, e.Thread)
		rec.Cycle, rec.Line, rec.V1, rec.V2 = e.Cycle, e.Line, e.V1, e.V2
	case obs.KindMCPFWasted:
		rec := r.next(OpWasted, e.Thread)
		rec.Cycle, rec.Line, rec.Aux, rec.V1 = e.Cycle, e.Line, uint8(e.V2), e.V1
	case obs.KindASDEpochRoll:
		// Handled by the OnEpochRoll hook, which also sees the tables.
	case obs.KindMCEnqueue, obs.KindMCSchedule, obs.KindMCIssue, obs.KindMCComplete,
		obs.KindMCQueues, obs.KindMCBankConflict, obs.KindDRAMAccess, obs.KindDRAMRefresh,
		obs.KindCacheAccess, obs.KindCPUStall, obs.KindASDPrefetchDecision, obs.KindSchedPolicy:
		// Not part of a prefetch's lineage.
	}
}

// OnDecision records an inequality (5)/(6) firing: the k-th element of
// a stream at line triggered a degree-m prefetch, witnessed by lht(k)
// and lht(k+m) from the deciding direction table. Called by the ASD
// engine on its hot path; nil-safe.
//
//asd:hotpath
func (r *Recorder) OnDecision(thread int32, cycle uint64, line mem.Line, down bool, k, m int, lhtK, lhtKm uint32) {
	if r == nil {
		return
	}
	rec := r.next(OpDecision, thread)
	rec.Cycle, rec.Line, rec.Aux = cycle, line, DecisionAux(down, m)
	rec.V1, rec.V2, rec.V3 = int64(k), int64(m), PackWitness(lhtK, lhtKm)
	r.lastDec = lastDecision{ok: true, thread: thread, cycle: cycle, id: rec.ID, k: int64(k)}
}

// OnSlot records a stream-filter slot lifecycle stage (OpSlotBirth,
// OpSlotExtend or OpSlotEnd). Called through the filter's slot hook on
// the hot path; nil-safe.
//
//asd:hotpath
func (r *Recorder) OnSlot(thread int32, op Op, cycle uint64, line mem.Line, length int, dir int8) {
	if r == nil {
		return
	}
	rec := r.next(op, thread)
	rec.Cycle, rec.Line, rec.Aux, rec.V1 = cycle, line, EncodeDir(dir), int64(length)
}

// OnEpochRoll snapshots both direction tables at an SLH epoch boundary.
// The engine calls it after flushing the stream filter but before
// EpochEnd, so Curr is the ending epoch's deciding table and Next is
// what the rollover installs. epoch is the completed-roll count the
// boundary establishes (e.Epochs + 1 at call time). Allocates — but
// only once per EpochLen reads, the same off-cycle budget as the
// engine's own epoch bookkeeping. Nil-safe.
func (r *Recorder) OnEpochRoll(thread int32, cycle, epoch uint64, up, down *slh.Table) {
	if r == nil {
		return
	}
	r.curEpoch[int(thread)&(maxThreads-1)] = uint32(epoch)
	r.push(Record{Op: OpEpochRoll, Thread: thread, Cycle: cycle, V1: int64(epoch)})
	if len(r.epochs) >= r.maxEpochs {
		return
	}
	uc, un := up.Snapshot()
	dc, dn := down.Snapshot()
	r.epochs = append(r.epochs, EpochSnap{
		Thread: thread, Epoch: uint32(epoch), Cycle: cycle,
		UpCurr: uc, UpNext: un, DownCurr: dc, DownNext: dn,
	})
}

// Stream flushes the recorder into its transportable form: surviving
// ring records oldest-first plus the epoch snapshots. The recorder
// keeps recording afterwards; Stream may be called repeatedly.
func (r *Recorder) Stream() *Stream {
	if r == nil {
		return &Stream{}
	}
	n := r.head
	size := uint64(len(r.ring))
	dropped := uint64(0)
	if n > size {
		dropped = n - size
		n = size
	}
	recs := make([]Record, n)
	// Oldest-first is [head-n, head); split at most once around the
	// ring's wrap point so both halves move as bulk copies.
	start := int(r.head-n) & (len(r.ring) - 1)
	m := copy(recs, r.ring[start:min(start+int(n), len(r.ring))])
	copy(recs[m:], r.ring[:int(n)-m])
	epochs := append([]EpochSnap(nil), r.epochs...)
	return &Stream{TraceID: r.traceID, Dropped: dropped, Records: recs, Epochs: epochs}
}
