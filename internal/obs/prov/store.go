package prov

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists provenance streams as per-key binary sidecar files in
// one directory, alongside (not inside) the farm's outcome store: the
// outcome store answers "what happened", the sidecars answer "why".
// Writes are atomic (temp file + rename) so a crashed run never leaves
// a truncated stream behind.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a sidecar directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("prov: store dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prov: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the sidecar directory.
func (s *Store) Dir() string { return s.dir }

const sidecarExt = ".prov"

// path validates a key (farm spec keys are hex; anything
// filesystem-hostile is rejected) and returns its sidecar path.
func (s *Store) path(key string) (string, error) {
	if key == "" || len(key) > 128 {
		return "", fmt.Errorf("prov: bad store key %q", key)
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return "", fmt.Errorf("prov: bad store key %q", key)
		}
	}
	if strings.HasPrefix(key, ".") {
		return "", fmt.Errorf("prov: bad store key %q", key)
	}
	return filepath.Join(s.dir, key+sidecarExt), nil
}

// Save writes key's stream atomically, replacing any previous version.
func (s *Store) Save(key string, st *Stream) error {
	path, err := s.path(key)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-prov-*")
	if err != nil {
		return fmt.Errorf("prov: save %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if err := EncodeBinary(tmp, st); err != nil {
		tmp.Close()
		return fmt.Errorf("prov: save %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("prov: save %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("prov: save %s: %w", key, err)
	}
	return nil
}

// Load reads key's stream. The boolean is false when no sidecar exists.
func (s *Store) Load(key string) (*Stream, bool, error) {
	path, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("prov: load %s: %w", key, err)
	}
	defer f.Close()
	st, err := DecodeBinary(f)
	if err != nil {
		return nil, false, fmt.Errorf("prov: load %s: %w", key, err)
	}
	return st, true, nil
}

// Keys lists every stored key, sorted.
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("prov: list store: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, sidecarExt) || strings.HasPrefix(name, ".") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, sidecarExt))
	}
	sort.Strings(keys)
	return keys, nil
}
