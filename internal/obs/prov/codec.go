package prov

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"unicode/utf8"

	"asdsim/internal/mem"
)

// The binary codec is the compact at-rest form of a Stream: a magic
// header, then uvarint/zigzag-varint fields in record order. It exists
// for the farm's per-run sidecar files; the JSONL form is the
// greppable/interop twin. Both round-trip exactly (FuzzProvCodec).

// binaryMagic leads every binary stream; bump the final digit on any
// incompatible layout change.
const binaryMagic = "ASDPROV1"

// Decode limits: a well-formed stream never exceeds these (the recorder
// bounds its ring and epoch list), so anything larger is corruption and
// must not be trusted with a large allocation.
const (
	maxDecodeRecords = 1 << 22
	maxDecodeEpochs  = 1 << 18
	maxDecodeTable   = 1 << 12
	maxDecodeTrace   = 1 << 10
)

// EncodeBinary writes s in the binary format.
func EncodeBinary(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		bw.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	putI := func(v int64) {
		bw.Write(buf[:binary.PutVarint(buf[:], v)])
	}
	putU(uint64(len(s.TraceID)))
	bw.WriteString(s.TraceID)
	putU(s.Dropped)
	putU(uint64(len(s.Records)))
	for _, r := range s.Records {
		bw.WriteByte(byte(r.Op))
		bw.WriteByte(r.Aux)
		putU(uint64(uint32(r.Thread)))
		putU(uint64(r.Epoch))
		putU(r.Cycle)
		putU(uint64(r.Line))
		putU(r.ID)
		putI(r.V1)
		putI(r.V2)
		putI(r.V3)
	}
	putU(uint64(len(s.Epochs)))
	putTable := func(t []uint32) {
		putU(uint64(len(t)))
		for _, v := range t {
			putU(uint64(v))
		}
	}
	for _, e := range s.Epochs {
		putU(uint64(uint32(e.Thread)))
		putU(uint64(e.Epoch))
		putU(e.Cycle)
		putTable(e.UpCurr)
		putTable(e.UpNext)
		putTable(e.DownCurr)
		putTable(e.DownNext)
	}
	return bw.Flush()
}

// DecodeBinary reads one binary stream. It validates the magic and
// bounds every count before allocating, so arbitrary input fails with
// an error rather than a panic or an absurd allocation.
func DecodeBinary(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("prov: decode: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("prov: decode: bad magic %q", magic)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getI := func() (int64, error) { return binary.ReadVarint(br) }
	getN := func(limit uint64, what string) (uint64, error) {
		n, err := getU()
		if err != nil {
			return 0, fmt.Errorf("prov: decode %s count: %w", what, err)
		}
		if n > limit {
			return 0, fmt.Errorf("prov: decode: %s count %d exceeds limit %d", what, n, limit)
		}
		return n, nil
	}

	s := &Stream{}
	tn, err := getN(maxDecodeTrace, "trace-id")
	if err != nil {
		return nil, err
	}
	tid := make([]byte, tn)
	if _, err := io.ReadFull(br, tid); err != nil {
		return nil, fmt.Errorf("prov: decode trace id: %w", err)
	}
	s.TraceID = string(tid)
	// Trace IDs are hex strings (or plain labels); rejecting invalid
	// UTF-8 keeps every binary stream representable in the JSONL twin,
	// whose JSON strings would otherwise mangle such bytes.
	if !utf8.ValidString(s.TraceID) {
		return nil, fmt.Errorf("prov: decode: trace id is not valid UTF-8")
	}
	if s.Dropped, err = getU(); err != nil {
		return nil, fmt.Errorf("prov: decode dropped: %w", err)
	}

	nRec, err := getN(maxDecodeRecords, "record")
	if err != nil {
		return nil, err
	}
	s.Records = make([]Record, 0, min(nRec, 4096))
	for i := uint64(0); i < nRec; i++ {
		var rec Record
		op, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("prov: decode record %d: %w", i, err)
		}
		if op >= byte(numOps) {
			return nil, fmt.Errorf("prov: decode record %d: bad op %d", i, op)
		}
		rec.Op = Op(op)
		if rec.Aux, err = br.ReadByte(); err != nil {
			return nil, fmt.Errorf("prov: decode record %d: %w", i, err)
		}
		// Wire order matches EncodeBinary: thread, epoch, cycle, line,
		// id, then the three signed values.
		var thread, epoch, line uint64
		for _, dst := range []*uint64{&thread, &epoch, &rec.Cycle, &line, &rec.ID} {
			if *dst, err = getU(); err != nil {
				return nil, fmt.Errorf("prov: decode record %d: %w", i, err)
			}
		}
		rec.Thread = int32(uint32(thread))
		rec.Epoch = uint32(epoch)
		rec.Line = mem.Line(line)
		for _, dst := range []*int64{&rec.V1, &rec.V2, &rec.V3} {
			if *dst, err = getI(); err != nil {
				return nil, fmt.Errorf("prov: decode record %d: %w", i, err)
			}
		}
		s.Records = append(s.Records, rec)
	}

	nEp, err := getN(maxDecodeEpochs, "epoch")
	if err != nil {
		return nil, err
	}
	getTable := func() ([]uint32, error) {
		n, err := getN(maxDecodeTable, "table")
		if err != nil {
			return nil, err
		}
		t := make([]uint32, n)
		for i := range t {
			v, err := getU()
			if err != nil {
				return nil, err
			}
			t[i] = uint32(v)
		}
		return t, nil
	}
	s.Epochs = make([]EpochSnap, 0, min(nEp, 1024))
	for i := uint64(0); i < nEp; i++ {
		var e EpochSnap
		var thread, epoch uint64
		if thread, err = getU(); err != nil {
			return nil, fmt.Errorf("prov: decode epoch %d: %w", i, err)
		}
		if epoch, err = getU(); err != nil {
			return nil, fmt.Errorf("prov: decode epoch %d: %w", i, err)
		}
		if e.Cycle, err = getU(); err != nil {
			return nil, fmt.Errorf("prov: decode epoch %d: %w", i, err)
		}
		e.Thread = int32(uint32(thread))
		e.Epoch = uint32(epoch)
		for _, dst := range []*[]uint32{&e.UpCurr, &e.UpNext, &e.DownCurr, &e.DownNext} {
			if *dst, err = getTable(); err != nil {
				return nil, fmt.Errorf("prov: decode epoch %d: %w", i, err)
			}
		}
		s.Epochs = append(s.Epochs, e)
	}
	return s, nil
}

// jsonlHeader is the first line of the JSONL form.
type jsonlHeader struct {
	TraceID string `json:"trace_id"`
	Dropped uint64 `json:"dropped,omitempty"`
}

// jsonlLine is every subsequent line: exactly one of the fields is set.
type jsonlLine struct {
	R *Record    `json:"r,omitempty"`
	E *EpochSnap `json:"e,omitempty"`
}

// EncodeJSONL writes s as JSON Lines: a header line, then one line per
// record, then one per epoch snapshot.
func EncodeJSONL(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{TraceID: s.TraceID, Dropped: s.Dropped}); err != nil {
		return err
	}
	for i := range s.Records {
		if err := enc.Encode(jsonlLine{R: &s.Records[i]}); err != nil {
			return err
		}
	}
	for i := range s.Epochs {
		if err := enc.Encode(jsonlLine{E: &s.Epochs[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads the JSON Lines form.
func DecodeJSONL(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	s := &Stream{}
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			var h jsonlHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("prov: decode jsonl header: %w", err)
			}
			s.TraceID, s.Dropped = h.TraceID, h.Dropped
			first = false
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("prov: decode jsonl: %w", err)
		}
		switch {
		case l.R != nil:
			if len(s.Records) >= maxDecodeRecords {
				return nil, fmt.Errorf("prov: decode jsonl: record count exceeds limit")
			}
			s.Records = append(s.Records, *l.R)
		case l.E != nil:
			if len(s.Epochs) >= maxDecodeEpochs {
				return nil, fmt.Errorf("prov: decode jsonl: epoch count exceeds limit")
			}
			s.Epochs = append(s.Epochs, *l.E)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prov: decode jsonl: %w", err)
	}
	if first {
		return nil, fmt.Errorf("prov: decode jsonl: empty input")
	}
	return s, nil
}
