package prov

import (
	"bytes"
	"testing"
)

// sampleStream builds a small but representative stream covering every
// lifecycle stage, an epoch snapshot and a ring-drop count.
func sampleStream() *Stream {
	tbl := func(base uint32) []uint32 {
		t := make([]uint32, 16)
		for i := range t {
			t[i] = base >> uint(i)
		}
		return t
	}
	return &Stream{
		TraceID: "deadbeefcafebabe",
		Dropped: 3,
		Records: []Record{
			{Op: OpEpochRoll, Epoch: 1, Cycle: 2000, ID: 11, V1: 1},
			{Op: OpSlotBirth, Epoch: 1, Cycle: 2100, Line: 0x40, ID: 12},
			{Op: OpSlotExtend, Aux: EncodeDir(1), Epoch: 1, Cycle: 2150, Line: 0x41, ID: 13, V1: 2},
			{Op: OpDecision, Aux: DecisionAux(false, 1), Epoch: 1, Cycle: 2150, Line: 0x41, ID: 14, V1: 2, V2: 1, V3: PackWitness(9, 30)},
			{Op: OpNominate, Epoch: 1, Cycle: 2150, Line: 0x42, ID: 15, V1: 1, V2: 14, V3: 2},
			{Op: OpIssue, Epoch: 1, Cycle: 2160, Line: 0x42, ID: 16, V1: 1, V2: 2400},
			{Op: OpInstall, Epoch: 1, Cycle: 2402, Line: 0x42, ID: 17, V1: 1},
			{Op: OpPBHit, Epoch: 1, Cycle: 2500, Line: 0x42, ID: 18, V1: 1},
			{Op: OpDrop, Aux: 2, Thread: 1, Epoch: 1, Cycle: 2600, Line: 0x99, ID: 19, V1: 4},
			{Op: OpWasted, Aux: 1, Epoch: 1, Cycle: 2700, Line: 0x77, ID: 20, V1: 2},
		},
		Epochs: []EpochSnap{{
			Epoch: 1, Cycle: 2000,
			UpCurr: tbl(1600), UpNext: tbl(1800), DownCurr: tbl(400), DownNext: tbl(300),
		}},
	}
}

// equalStreams compares two streams treating nil and empty slices as
// equal (the binary and JSONL decoders differ on that representation).
func equalStreams(a, b *Stream) bool {
	if a.TraceID != b.TraceID || a.Dropped != b.Dropped ||
		len(a.Records) != len(b.Records) || len(a.Epochs) != len(b.Epochs) {
		return false
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			return false
		}
	}
	eqTable := func(x, y []uint32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for i := range a.Epochs {
		x, y := a.Epochs[i], b.Epochs[i]
		if x.Thread != y.Thread || x.Epoch != y.Epoch || x.Cycle != y.Cycle ||
			!eqTable(x.UpCurr, y.UpCurr) || !eqTable(x.UpNext, y.UpNext) ||
			!eqTable(x.DownCurr, y.DownCurr) || !eqTable(x.DownNext, y.DownNext) {
			return false
		}
	}
	return true
}

// FuzzProvCodec feeds arbitrary bytes to the binary stream decoder.
// Malformed input must fail cleanly (no panic, no unbounded
// allocation), and any input that does decode must survive a binary
// re-encode/decode round trip and a JSONL round trip unchanged — the
// property the farm's sidecar store and `asdfarm explain` rest on.
func FuzzProvCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(binaryMagic))
	f.Add([]byte("not a provenance stream"))
	f.Add([]byte(binaryMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // absurd trace-id length
	var seed bytes.Buffer
	if err := EncodeBinary(&seed, sampleStream()); err != nil {
		f.Fatalf("encode seed: %v", err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-3]) // truncated tail

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return // malformed input is expected to fail, just not panic
		}
		var bin bytes.Buffer
		if err := EncodeBinary(&bin, s); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := DecodeBinary(&bin)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !equalStreams(s, s2) {
			t.Fatalf("binary round trip diverged:\n%+v\nvs\n%+v", s, s2)
		}
		var jl bytes.Buffer
		if err := EncodeJSONL(&jl, s); err != nil {
			t.Fatalf("jsonl encode: %v", err)
		}
		s3, err := DecodeJSONL(&jl)
		if err != nil {
			t.Fatalf("jsonl decode: %v", err)
		}
		if !equalStreams(s, s3) {
			t.Fatalf("jsonl round trip diverged:\n%+v\nvs\n%+v", s, s3)
		}
	})
}
