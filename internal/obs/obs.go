// Package obs is the simulator's cycle-level observability substrate: a
// probe/event bus that the hot loops of the memory controller, DRAM,
// caches, CPU threads and the ASD engine publish into, plus the sinks
// that turn the event stream into time-series samples (Sampler),
// Chrome trace-event JSON (TraceBuilder) and per-depth prefetch
// efficiency stats (DepthStats).
//
// The bus is engineered to vanish when unused: instrumented components
// hold a *Bus that is nil when no observer is attached and guard every
// emission site with a single pointer nil-check, so a run without
// observers pays one predictable branch per probe point (measured <2%
// on the full hot loop; see BenchmarkObsDisabledHotLoop).
//
// One Bus belongs to one simulation run and is driven from that run's
// single goroutine; Emit performs no locking. Sinks attached to buses
// of concurrently running simulations (e.g. one aggregating sink under
// the farm) must themselves be safe for concurrent use.
package obs

import (
	"fmt"
	"sync/atomic"

	"asdsim/internal/mem"
)

// Kind enumerates the probe points.
type Kind uint8

// Probe points, grouped by publishing component.
const (
	// KindMCEnqueue: a regular command entered the memory controller.
	// ID/Line/Thread identify it; V1 is 1 for a Write.
	KindMCEnqueue Kind = iota
	// KindMCSchedule: the reorder-queue scheduler moved a command into
	// the CAQ. V1 is 1 for a Write.
	KindMCSchedule
	// KindMCIssue: the Final Scheduler transmitted the CAQ head to
	// DRAM. V1 is 1 for a Write; V2 is the predicted completion cycle.
	KindMCIssue
	// KindMCComplete: a demand Read was delivered back to the CPU
	// side. V1 is the MC-observed latency (completion - arrival).
	KindMCComplete
	// KindMCPBHit: a Read was satisfied by the Prefetch Buffer without
	// DRAM. V1 is 0 for the entry check, 1 for the CAQ-head check; V2
	// is the prefetch depth that staged the line.
	KindMCPBHit
	// KindMCQueues samples the controller's queue occupancy once per
	// MC cycle stepped: V1 = reorder (read+write) depth, V2 = CAQ
	// depth, V3 = LPQ depth.
	KindMCQueues
	// KindMCBankConflict: a regular command could not proceed because
	// its bank was held by a previously issued prefetch.
	KindMCBankConflict
	// KindMCPFNominate: the ASD engine's nomination entered the LPQ.
	// V1 is the prefetch depth (1 = adjacent line).
	KindMCPFNominate
	// KindMCPFDrop: a nomination or queued prefetch was dropped
	// (duplicate, full LPQ, demand overtake, or write). V1 is the
	// depth when known (0 otherwise).
	KindMCPFDrop
	// KindMCPFIssue: the Final Scheduler issued the LPQ head to DRAM.
	// V1 is the depth.
	KindMCPFIssue
	// KindMCPFLate: a prefetch completed with demand Reads already
	// merged onto it — useful but late. V1 = depth, V2 = waiters.
	KindMCPFLate
	// KindMCPFInstall: a completed prefetch was installed into the
	// Prefetch Buffer. V1 is the depth.
	KindMCPFInstall
	// KindMCPFWasted: a Prefetch Buffer line was discarded unused.
	// V1 = depth, V2 = 0 for LRU eviction, 1 for write invalidation.
	KindMCPFWasted

	// KindDRAMAccess: one DRAM column access. V1 = 0 row hit, 1 row
	// miss (cold bank), 2 row conflict; V2 = bank index; V3 bit 0 set
	// for a write, bit 1 set for a memory-side prefetch.
	KindDRAMAccess
	// KindDRAMRefresh: an auto-refresh window was applied to a bank
	// (lazily, on next access). V2 is the bank index.
	KindDRAMRefresh

	// KindCacheAccess: one demand access walked the hierarchy. V1 is
	// the satisfying level (1=L1, 2=L2, 3=L3, 4=memory); V2 is 1 for
	// a store.
	KindCacheAccess

	// KindCPUStall: a thread resumed after blocking on memory. V1 is
	// the stall duration in CPU cycles.
	KindCPUStall

	// KindASDEpochRoll: an ASD engine rolled its SLH epoch. V1 is the
	// completed-epoch count after the roll.
	KindASDEpochRoll
	// KindASDPrefetchDecision: the engine decided on a tracked Read.
	// V1 is the stream length so far, V2 the prefetch degree chosen
	// (0 = no prefetch).
	KindASDPrefetchDecision

	// KindSchedPolicy: the Adaptive Scheduler closed an epoch. V1 is
	// the policy selected for the next epoch, V2 the conflict count of
	// the closed epoch, V3 the previous policy.
	KindSchedPolicy

	numKinds
)

// kindNames indexes Kind.String.
//
//asd:exhaustive
var kindNames = [numKinds]string{
	"mc-enqueue", "mc-schedule", "mc-issue", "mc-complete", "mc-pb-hit",
	"mc-queues", "mc-bank-conflict", "mc-pf-nominate", "mc-pf-drop",
	"mc-pf-issue", "mc-pf-late", "mc-pf-install", "mc-pf-wasted",
	"dram-access", "dram-refresh", "cache-access", "cpu-stall",
	"asd-epoch-roll", "asd-decision", "sched-policy",
}

// NumKinds is the number of defined probe kinds.
const NumKinds = int(numKinds)

// DropCause classifies a KindMCPFDrop event (carried in V2): why a
// prefetch nomination was rejected or a queued prefetch discarded. The
// provenance layer stores it verbatim in OpDrop records.
type DropCause uint8

const (
	// DropUnknown is the zero value (events predating cause tagging).
	DropUnknown DropCause = iota
	// DropPBDup: the line is already staged in the Prefetch Buffer.
	DropPBDup
	// DropInFlightDup: a prefetch for the line is already in flight.
	DropInFlightDup
	// DropLPQDup: the line is already queued in the LPQ.
	DropLPQDup
	// DropDemandPending: a demand for the line is already pending.
	DropDemandPending
	// DropLPQFull: the LPQ is at capacity.
	DropLPQFull
	// DropWrite: a Write invalidated the queued prefetch.
	DropWrite
	// DropOvertaken: the demand Read arrived before the LPQ issued it.
	DropOvertaken
	// DropFlushed: the LPQ was flushed wholesale (mode transition).
	DropFlushed

	numDropCauses
)

//asd:exhaustive
var dropCauseNames = [numDropCauses]string{
	"unknown", "pb-dup", "inflight-dup", "lpq-dup", "demand-pending",
	"lpq-full", "write", "overtaken", "flushed",
}

// String implements fmt.Stringer.
func (c DropCause) String() string {
	if int(c) < len(dropCauseNames) {
		return dropCauseNames[c]
	}
	return "cause?"
}

// AtNomination reports whether the cause arises at nomination time (the
// same CPU cycle as the engine decision that produced the candidate),
// as opposed to later in the prefetch's queue lifetime.
func (c DropCause) AtNomination() bool { return c >= DropPBDup && c <= DropLPQFull }

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one probe firing. Cycle is always in CPU cycles (DRAM-side
// probes convert); the remaining fields are kind-specific, documented
// on each Kind.
type Event struct {
	Kind   Kind
	Thread int32
	Cycle  uint64
	ID     uint64
	Line   mem.Line
	V1     int64
	V2     int64
	V3     int64
}

// Sink consumes events. Emit is called from the simulation goroutine
// in probe-firing order; a sink shared across concurrent simulations
// must be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

// Bus fans events out to its sinks in attach order. A nil *Bus is the
// disabled state: components guard emission sites with a nil check, so
// the probe compiles to one branch when observability is off.
type Bus struct {
	sinks []Sink
}

// NewBus returns a bus with the given sinks attached, in order.
func NewBus(sinks ...Sink) *Bus {
	b := &Bus{}
	for _, s := range sinks {
		b.Attach(s)
	}
	return b
}

// Attach appends a sink; events reach sinks in attach order. Attach
// must not race with Emit (attach everything before the run starts).
func (b *Bus) Attach(s Sink) {
	if s == nil {
		panic("obs: attach of nil sink")
	}
	b.sinks = append(b.sinks, s)
}

// Emit delivers e to every sink in attach order. Safe on a nil bus.
//
//asd:hotpath
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	for _, s := range b.sinks {
		s.Emit(e)
	}
}

// Enabled reports whether emitting can reach any sink. Components may
// use it to skip building expensive payloads; the common per-probe
// guard is a plain `bus != nil` check.
func (b *Bus) Enabled() bool { return b != nil && len(b.sinks) > 0 }

// Counter is a trivial concurrency-safe sink counting events per kind;
// useful in tests and as a liveness check on shared buses.
type Counter struct {
	counts [numKinds]atomic.Uint64
}

// Emit implements Sink.
//
//asd:hotpath
func (c *Counter) Emit(e Event) {
	if int(e.Kind) < len(c.counts) {
		c.counts[e.Kind].Add(1)
	}
}

// Count returns the number of events seen for kind k.
func (c *Counter) Count(k Kind) uint64 {
	if int(k) >= len(c.counts) {
		return 0
	}
	return c.counts[k].Load()
}

// Total returns the number of events seen across all kinds.
func (c *Counter) Total() uint64 {
	var n uint64
	for i := range c.counts {
		n += c.counts[i].Load()
	}
	return n
}

// Funcs adapts a function to a Sink.
type Funcs func(Event)

// Emit implements Sink.
//
//asd:hotpath
func (f Funcs) Emit(e Event) { f(e) }
