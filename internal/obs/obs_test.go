package obs

import (
	"fmt"
	"testing"
)

// TestBusFanOutOrdering verifies both fan-out order (attach order, per
// event) and stream order (emission order, per sink).
func TestBusFanOutOrdering(t *testing.T) {
	var got []string
	mk := func(name string) Funcs {
		return func(e Event) { got = append(got, fmt.Sprintf("%s:%d", name, e.V1)) }
	}
	b := NewBus(mk("a"), mk("b"))
	b.Attach(mk("c"))

	for i := int64(1); i <= 3; i++ {
		b.Emit(Event{Kind: KindMCEnqueue, V1: i})
	}

	want := []string{
		"a:1", "b:1", "c:1",
		"a:2", "b:2", "c:2",
		"a:3", "b:3", "c:3",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d deliveries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestNilBusEmitIsSafe(t *testing.T) {
	var b *Bus
	b.Emit(Event{Kind: KindMCEnqueue}) // must not panic
	if b.Enabled() {
		t.Fatal("nil bus reports Enabled")
	}
	if !NewBus(&Counter{}).Enabled() {
		t.Fatal("bus with a sink reports disabled")
	}
	if NewBus().Enabled() {
		t.Fatal("empty bus reports enabled")
	}
}

func TestAttachNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Attach(nil) did not panic")
		}
	}()
	NewBus().Attach(nil)
}

func TestCounter(t *testing.T) {
	c := &Counter{}
	b := NewBus(c)
	b.Emit(Event{Kind: KindMCEnqueue})
	b.Emit(Event{Kind: KindMCEnqueue})
	b.Emit(Event{Kind: KindDRAMAccess})
	if got := c.Count(KindMCEnqueue); got != 2 {
		t.Errorf("Count(KindMCEnqueue) = %d, want 2", got)
	}
	if got := c.Count(KindDRAMAccess); got != 1 {
		t.Errorf("Count(KindDRAMAccess) = %d, want 1", got)
	}
	if got := c.Total(); got != 3 {
		t.Errorf("Total() = %d, want 3", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" {
			t.Errorf("Kind(%d) has empty name", k)
		}
	}
	if s := Kind(200).String(); s != "Kind(200)" {
		t.Errorf("out-of-range Kind string = %q", s)
	}
}

func TestDepthStatsBuckets(t *testing.T) {
	d := &DepthStats{}
	d.Emit(Event{Kind: KindMCPFNominate, V1: 1})
	d.Emit(Event{Kind: KindMCPFNominate, V1: MaxTrackedDepth + 5}) // clamps
	d.Emit(Event{Kind: KindMCPBHit, V2: 2})
	d.Emit(Event{Kind: KindMCPFLate, V1: 2})
	d.Emit(Event{Kind: KindMCEnqueue, V1: 3}) // ignored kind
	if d.Nominated[1] != 1 || d.Nominated[MaxTrackedDepth] != 1 {
		t.Errorf("Nominated = %v", d.Nominated)
	}
	if d.Timely[2] != 1 || d.Late[2] != 1 {
		t.Errorf("Timely = %v, Late = %v", d.Timely, d.Late)
	}
	if got := d.MaxDepthSeen(); got != MaxTrackedDepth {
		t.Errorf("MaxDepthSeen = %d, want %d", got, MaxTrackedDepth)
	}
}
