package span

import (
	"io"
	"sort"

	"asdsim/internal/obs"
)

// BuildTrace renders spans into a Chrome trace-event builder: one
// process per node (coordinator first), one thread track per trace,
// timestamps rebased so the earliest span starts at zero. The caller
// may merge further processes (e.g. sim-level cycle traces) into the
// returned builder before writing it out.
func BuildTrace(spans []Span) *obs.TraceBuilder {
	tb := obs.NewTraceBuilder()
	if len(spans) == 0 {
		return tb
	}

	minStart := spans[0].StartUS
	for _, sp := range spans {
		if sp.StartUS < minStart {
			minStart = sp.StartUS
		}
	}

	byNode := make(map[string][]Span)
	for _, sp := range spans {
		byNode[sp.Node] = append(byNode[sp.Node], sp)
	}

	for _, node := range Nodes(spans) {
		nodeSpans := byNode[node]
		tb.StartProcess(node)

		// One track per trace, ordered by trace ID so track layout is
		// stable across exports.
		traceIDs := make(map[string]bool)
		for _, sp := range nodeSpans {
			traceIDs[sp.TraceID] = true
		}
		ids := make([]string, 0, len(traceIDs))
		for id := range traceIDs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		tid := make(map[string]int, len(ids))
		for i, id := range ids {
			tid[id] = i
			label := id
			if len(label) > 12 {
				label = label[:12]
			}
			tb.NameThread(i, "trace "+label)
		}

		for _, sp := range nodeSpans {
			args := map[string]any{
				"trace_id": sp.TraceID,
				"span_id":  sp.ID.String(),
			}
			if sp.Parent != 0 {
				args["parent"] = sp.Parent.String()
			}
			if sp.Key != "" {
				args["key"] = sp.Key
			}
			for _, at := range sp.Attrs {
				args[at.Key] = at.Value
			}
			ts := float64(sp.StartUS - minStart)
			if sp.DurUS > 0 {
				tb.AddSlice(sp.Name, "span", ts, float64(sp.DurUS), tid[sp.TraceID], args)
			} else {
				tb.AddInstant(sp.Name, "span", ts, tid[sp.TraceID], args)
			}
		}
	}
	return tb
}

// WriteChromeTrace renders spans with BuildTrace and writes the JSON
// document to w.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return BuildTrace(spans).WriteJSON(w)
}
