// Package span is the farm's deterministic distributed-tracing layer.
//
// A trace follows one spec (one simulation cell) through the cluster:
// submit, coalesce, lease grant, heartbeat renewals, worker execution,
// lease expiry and steal, result append, cache hit. Trace IDs are
// derived from the spec's content-addressed SHA-256 key, so the same
// spec always lands in the same trace no matter which process observed
// it; span IDs are FNV-64a hashes of the trace ID, span name and a
// per-recorder sequence number. No wall clock and no randomness are
// consulted anywhere in this package: every timestamp comes from the
// clock injected into the Recorder, which keeps the asdlint
// determinism pass clean and makes span streams reproducible under the
// fake clocks used in tests.
package span

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ID is a 64-bit span identifier, rendered as 16 lowercase hex digits
// in JSON. The zero ID means "no span" (e.g. a root span's parent).
type ID uint64

// String renders the ID as 16 lowercase hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalText implements encoding.TextMarshaler.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler. It accepts up to
// 16 hex digits in either case.
func (id *ID) UnmarshalText(b []byte) error {
	if len(b) == 0 || len(b) > 16 {
		return fmt.Errorf("span: id %q must be 1..16 hex digits", b)
	}
	v, err := strconv.ParseUint(string(b), 16, 64)
	if err != nil {
		return fmt.Errorf("span: bad id %q: %v", b, err)
	}
	*id = ID(v)
	return nil
}

// Context is the trace context propagated through the cluster RPC
// envelope: which trace a remote span belongs to and which span is its
// parent.
type Context struct {
	TraceID string `json:"trace_id"`
	Parent  ID     `json:"parent,omitempty"`
}

// Attr is one string key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one completed span. Timestamps are microseconds on the
// recording process's injected clock (UnixMicro); DurUS is zero for
// instant events.
type Span struct {
	TraceID string `json:"trace_id"`
	ID      ID     `json:"id"`
	Parent  ID     `json:"parent,omitempty"`
	Name    string `json:"name"`
	Node    string `json:"node"`
	Key     string `json:"key,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// traceIDLen is the number of leading hex digits of the spec key used
// as the trace ID — 128 bits of the SHA-256 content address.
const traceIDLen = 32

// TraceIDFromKey derives the trace ID for a spec from its
// content-addressed key: the first 32 hex digits. Short keys (only
// seen in tests) are used whole.
func TraceIDFromKey(key string) string {
	if len(key) > traceIDLen {
		return key[:traceIDLen]
	}
	return key
}

// deriveID hashes (traceID, name, seq) with FNV-64a. The result is
// deterministic for a deterministic call sequence and never zero.
func deriveID(traceID, name string, seq uint64) ID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(traceID); i++ {
		h = (h ^ uint64(traceID[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (seq >> (8 * i) & 0xff)) * prime64
	}
	if h == 0 {
		h = 1
	}
	return ID(h)
}

// maxSpans bounds a Recorder's retained span buffer. When the bound is
// hit the oldest half is dropped: a long-lived coordinator keeps the
// recent lifecycle visible instead of growing without limit.
const maxSpans = 65536

// Recorder collects spans for one node (a coordinator or a worker
// process). All methods are safe for concurrent use. The clock is
// injected — pass the coordinator's Options.Now, time.Now at a
// process's edge, or a fake in tests.
type Recorder struct {
	node string
	now  func() time.Time

	mu    sync.Mutex
	seq   uint64
	spans []Span
}

// NewRecorder returns a Recorder stamping spans with the given node
// name and clock. now must be non-nil.
func NewRecorder(node string, now func() time.Time) *Recorder {
	if now == nil {
		panic("span: NewRecorder needs an injected clock")
	}
	return &Recorder{node: node, now: now}
}

// Node returns the node name spans are stamped with.
func (r *Recorder) Node() string { return r.node }

// Active is a started, not yet ended span.
type Active struct {
	r  *Recorder
	sp Span
}

// Start opens a span in traceID under parent (zero for a root span).
// The returned Active must be ended exactly once; nothing is recorded
// until End.
func (r *Recorder) Start(traceID string, parent ID, name, key string, attrs ...Attr) *Active {
	return r.StartOn(r.node, traceID, parent, name, key, attrs...)
}

// StartOn opens a span attributed to an explicit node. The coordinator
// uses it to record lease spans on the owning worker's behalf: a
// worker killed mid-lease can never ship its own spans, but its lease
// timeline should still appear under its name in the merged trace.
func (r *Recorder) StartOn(node, traceID string, parent ID, name, key string, attrs ...Attr) *Active {
	r.mu.Lock()
	r.seq++
	id := deriveID(traceID, name, r.seq)
	r.mu.Unlock()
	return &Active{r: r, sp: Span{
		TraceID: traceID, ID: id, Parent: parent, Name: name, Node: node,
		Key: key, StartUS: r.now().UnixMicro(), Attrs: attrs,
	}}
}

// ID returns the span's identifier, usable as a parent before End.
func (a *Active) ID() ID { return a.sp.ID }

// Context returns the trace context for children of this span.
func (a *Active) Context() Context {
	return Context{TraceID: a.sp.TraceID, Parent: a.sp.ID}
}

// End stamps the duration, appends any final attributes, and records
// the span.
func (a *Active) End(attrs ...Attr) {
	a.sp.Attrs = append(a.sp.Attrs, attrs...)
	if d := a.r.now().UnixMicro() - a.sp.StartUS; d > 0 {
		a.sp.DurUS = d
	}
	a.r.append(a.sp)
}

// Event records a zero-duration span (an instant) and returns its ID.
func (r *Recorder) Event(traceID string, parent ID, name, key string, attrs ...Attr) ID {
	r.mu.Lock()
	r.seq++
	id := deriveID(traceID, name, r.seq)
	r.mu.Unlock()
	r.append(Span{
		TraceID: traceID, ID: id, Parent: parent, Name: name, Node: r.node,
		Key: key, StartUS: r.now().UnixMicro(), Attrs: attrs,
	})
	return id
}

func (r *Recorder) append(sp Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxSpans {
		keep := maxSpans / 2
		copy(r.spans, r.spans[len(r.spans)-keep:])
		r.spans = r.spans[:keep]
	}
	r.spans = append(r.spans, sp)
}

// Ingest absorbs spans recorded elsewhere (a worker's CompleteRequest)
// into this recorder's buffer, preserving their Node attribution.
func (r *Recorder) Ingest(spans []Span) {
	for _, sp := range spans {
		r.append(sp)
	}
}

// DrainTrace removes and returns every buffered span belonging to
// traceID, in recording order. Workers use it to ship exactly one
// lease's spans with its result while other slots keep recording.
func (r *Recorder) DrainTrace(traceID string) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	kept := r.spans[:0]
	for _, sp := range r.spans {
		if sp.TraceID == traceID {
			out = append(out, sp)
		} else {
			kept = append(kept, sp)
		}
	}
	r.spans = kept
	return out
}

// SpansFor returns a copy of every buffered span whose trace belongs
// to one of the given spec keys, in recording order.
func (r *Recorder) SpansFor(keys []string) []Span {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[TraceIDFromKey(k)] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for _, sp := range r.spans {
		if want[sp.TraceID] {
			out = append(out, sp)
		}
	}
	return out
}

// Len returns the number of buffered spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Nodes returns the sorted set of node names appearing in spans, with
// "coordinator" first when present — the process order used by the
// Chrome-trace export.
func Nodes(spans []Span) []string {
	seen := make(map[string]bool)
	for _, sp := range spans {
		seen[sp.Node] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := names[i] == "coordinator", names[j] == "coordinator"
		if ci != cj {
			return ci
		}
		return names[i] < names[j]
	})
	return names
}
