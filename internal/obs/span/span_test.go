package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// tick is a fake clock advancing 1ms per reading.
func tick() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	for _, id := range []ID{0, 1, 0xdeadbeefcafe, ^ID(0)} {
		b, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != 18 { // 16 hex digits + quotes
			t.Fatalf("ID %d renders as %s, want 16 hex digits", id, b)
		}
		var back ID
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("round trip %d -> %s -> %d", id, b, back)
		}
	}
	var id ID
	if err := json.Unmarshal([]byte(`"not-hex"`), &id); err == nil {
		t.Error("non-hex id decoded without error")
	}
	if err := json.Unmarshal([]byte(`"00112233445566778"`), &id); err == nil {
		t.Error("17-digit id decoded without error")
	}
}

func TestTraceIDFromKey(t *testing.T) {
	key := strings.Repeat("ab", 32) // 64 hex digits, like a real spec key
	if got := TraceIDFromKey(key); got != key[:32] {
		t.Errorf("TraceIDFromKey = %s, want first 32 digits", got)
	}
	if got := TraceIDFromKey("short"); got != "short" {
		t.Errorf("short key mangled: %s", got)
	}
}

func TestDeriveIDDeterministicAndDistinct(t *testing.T) {
	a := deriveID("trace-a", "submit", 1)
	if b := deriveID("trace-a", "submit", 1); b != a {
		t.Errorf("same inputs, different ids: %s vs %s", a, b)
	}
	if b := deriveID("trace-a", "submit", 2); b == a {
		t.Error("sequence not mixed into id")
	}
	if b := deriveID("trace-b", "submit", 1); b == a {
		t.Error("trace id not mixed into id")
	}
	if b := deriveID("trace-a", "result", 1); b == a {
		t.Error("name not mixed into id")
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder("coordinator", tick())
	root := r.Start("t1", 0, "job", "key1", Attr{"bench", "GemsFDTD"})
	if root.ID() == 0 {
		t.Fatal("zero span id")
	}
	ctx := root.Context()
	if ctx.TraceID != "t1" || ctx.Parent != root.ID() {
		t.Fatalf("context = %+v", ctx)
	}
	ev := r.Event("t1", root.ID(), "steal", "key1")
	if ev == 0 || ev == root.ID() {
		t.Fatalf("event id %s collides or is zero", ev)
	}
	root.End(Attr{"ok", "true"})

	spans := r.SpansFor([]string{"key1"})
	if len(spans) != 0 {
		t.Fatalf("key1's trace id is not t1; SpansFor should match trace ids, got %d", len(spans))
	}
	all := r.DrainTrace("t1")
	if len(all) != 2 {
		t.Fatalf("drained %d spans, want 2", len(all))
	}
	// The event recorded before End, so it drains first.
	if all[0].Name != "steal" || all[0].DurUS != 0 {
		t.Errorf("event span = %+v", all[0])
	}
	job := all[1]
	if job.Name != "job" || job.Node != "coordinator" || job.Key != "key1" {
		t.Errorf("job span = %+v", job)
	}
	if job.DurUS <= 0 {
		t.Errorf("job duration = %d, want > 0", job.DurUS)
	}
	if len(job.Attrs) != 2 || job.Attrs[1].Key != "ok" {
		t.Errorf("job attrs = %+v", job.Attrs)
	}
	if r.Len() != 0 {
		t.Errorf("recorder still holds %d spans after drain", r.Len())
	}
}

func TestDrainTraceIsolation(t *testing.T) {
	r := NewRecorder("w1", tick())
	r.Event("t1", 0, "a", "")
	r.Event("t2", 0, "b", "")
	r.Event("t1", 0, "c", "")
	got := r.DrainTrace("t1")
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("drain t1 = %+v", got)
	}
	if rest := r.DrainTrace("t2"); len(rest) != 1 || rest[0].Name != "b" {
		t.Fatalf("t2 spans disturbed: %+v", rest)
	}
}

func TestSpansForMatchesKeyDerivedTraces(t *testing.T) {
	r := NewRecorder("coordinator", tick())
	keyA := strings.Repeat("aa", 32)
	keyB := strings.Repeat("bb", 32)
	r.Event(TraceIDFromKey(keyA), 0, "submit", keyA)
	r.Event(TraceIDFromKey(keyB), 0, "submit", keyB)
	r.Ingest([]Span{{TraceID: TraceIDFromKey(keyA), ID: 7, Name: "execute", Node: "w1"}})

	got := r.SpansFor([]string{keyA})
	if len(got) != 2 {
		t.Fatalf("SpansFor(keyA) = %d spans, want 2", len(got))
	}
	if got[1].Node != "w1" {
		t.Errorf("ingested span lost attribution: %+v", got[1])
	}
	if r.Len() != 3 {
		t.Errorf("SpansFor drained the buffer: len = %d", r.Len())
	}
}

func TestRecorderBoundedRetention(t *testing.T) {
	r := NewRecorder("w1", tick())
	for i := 0; i < maxSpans+10; i++ {
		r.Event("t", 0, "e", "")
	}
	if n := r.Len(); n > maxSpans {
		t.Fatalf("recorder grew to %d spans, bound is %d", n, maxSpans)
	}
}

func TestNodesOrdering(t *testing.T) {
	spans := []Span{{Node: "w2"}, {Node: "coordinator"}, {Node: "w1"}, {Node: "w2"}}
	got := Nodes(spans)
	want := []string{"coordinator", "w1", "w2"}
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder("coordinator", tick())
	a := r.Start("t1", 0, "job", "key1")
	r.Event("t1", a.ID(), "steal", "key1", Attr{"from", "w1"})
	a.End()
	spans := r.DrainTrace("t1")
	spans = append(spans, Span{
		TraceID: "t1", ID: 42, Parent: a.ID(), Name: "execute",
		Node: "w2", StartUS: spans[0].StartUS + 100, DurUS: 50,
	})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	byName := map[string]int{}
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		if ev.Ph == "M" && ev.Name == "process_name" {
			pids[ev.Args["name"].(string)] = ev.Pid
		}
		if ev.Ph == "X" || ev.Ph == "i" {
			if ev.Ts < 0 {
				t.Errorf("event %s has negative rebased ts %f", ev.Name, ev.Ts)
			}
		}
	}
	if byName["job"] != 1 || byName["steal"] != 1 || byName["execute"] != 1 {
		t.Fatalf("span events missing: %v", byName)
	}
	cp, wok := pids["coordinator"], false
	if wp, ok := pids["w2"]; ok && wp != cp {
		wok = true
	}
	if !wok {
		t.Fatalf("expected distinct coordinator and w2 processes, got %v", pids)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "steal" && ev.Ph != "i" {
			t.Errorf("zero-duration span rendered as %q, want instant", ev.Ph)
		}
		if ev.Name == "execute" {
			if ev.Pid != pids["w2"] {
				t.Errorf("execute span in pid %d, want w2's %d", ev.Pid, pids["w2"])
			}
			if ev.Args["parent"] != a.ID().String() {
				t.Errorf("execute parent = %v, want %s", ev.Args["parent"], a.ID())
			}
		}
	}

	// An empty span set still renders a valid document.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("empty trace is not valid JSON")
	}
}
