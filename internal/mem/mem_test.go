package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Line
	}{
		{0, 0},
		{1, 0},
		{127, 0},
		{128, 1},
		{129, 1},
		{255, 1},
		{256, 2},
		{0xFFFF_FFFF_FFFF_FFFF, 0x01FF_FFFF_FFFF_FFFF},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		l := LineOf(a)
		base := l.Addr()
		// The base address must be line-aligned and contain a.
		return base%LineSize == 0 && base <= a && (a-base) < LineSize
	}
	// Constrain to 57-bit addresses so the shift does not overflow.
	g := func(raw uint64) bool { return f(Addr(raw & ((1 << 57) - 1))) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestLineNext(t *testing.T) {
	l := Line(100)
	if l.Next(+1) != 101 {
		t.Errorf("Next(+1) = %d, want 101", l.Next(+1))
	}
	if l.Next(-1) != 99 {
		t.Errorf("Next(-1) = %d, want 99", l.Next(-1))
	}
	if l.Next(5) != 105 {
		t.Errorf("Next(5) = %d, want 105", l.Next(5))
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "Read" || Write.String() != "Write" || Prefetch.String() != "Prefetch" {
		t.Errorf("Kind strings wrong: %v %v %v", Read, Write, Prefetch)
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind = %q", Kind(42).String())
	}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "Up" || Down.String() != "Down" {
		t.Errorf("Direction strings wrong: %v %v", Up, Down)
	}
}

func TestLineSizeConsistency(t *testing.T) {
	if 1<<LineShift != LineSize {
		t.Fatalf("LineShift %d inconsistent with LineSize %d", LineShift, LineSize)
	}
}
