package trace

import (
	"fmt"
	"sort"

	"asdsim/internal/mem"
	"asdsim/internal/stats"
)

// Analysis summarises a trace: operation mix, footprint, instruction
// intensity, and the line-stride distribution (the raw material the ASD
// prefetcher feeds on).
type Analysis struct {
	Records      uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// UniqueLines is the number of distinct cache lines touched.
	UniqueLines uint64
	// FootprintBytes is UniqueLines * line size.
	FootprintBytes uint64
	// MeanGap is the average compute-instruction gap between references.
	MeanGap float64
	// LineStrides histograms |delta| between consecutive references'
	// lines, clamped into [1,16]; +1 strides are the prefetcher's food.
	LineStrides *stats.Histogram
	// SameLine counts consecutive references to the same line.
	SameLine uint64
	// UpStrides and DownStrides count +1 and -1 line transitions.
	UpStrides   uint64
	DownStrides uint64
}

// Analyze drains src (up to max records; all if max <= 0) and summarises
// it.
func Analyze(src Source, max int) Analysis {
	a := Analysis{LineStrides: stats.NewHistogram(16)}
	seen := make(map[mem.Line]struct{})
	var prev mem.Line
	var havePrev bool
	var gapSum uint64
	for max <= 0 || a.Records < uint64(max) {
		rec, ok := src.Next()
		if !ok {
			break
		}
		a.Records++
		a.Instructions += uint64(rec.Gap) + 1
		gapSum += uint64(rec.Gap)
		if rec.Op == Store {
			a.Stores++
		} else {
			a.Loads++
		}
		line := mem.LineOf(rec.Addr)
		seen[line] = struct{}{}
		if havePrev {
			switch {
			case line == prev:
				a.SameLine++
			case line == prev+1:
				a.UpStrides++
				a.LineStrides.Observe(1)
			case line == prev-1:
				a.DownStrides++
				a.LineStrides.Observe(1)
			default:
				d := int64(line) - int64(prev)
				if d < 0 {
					d = -d
				}
				a.LineStrides.Observe(int(min64(d, 16)))
			}
		}
		prev = line
		havePrev = true
	}
	a.UniqueLines = uint64(len(seen))
	a.FootprintBytes = a.UniqueLines * mem.LineSize
	if a.Records > 0 {
		a.MeanGap = float64(gapSum) / float64(a.Records)
	}
	return a
}

func min64(a int64, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// String renders a multi-line human-readable summary.
func (a Analysis) String() string {
	var sb []byte
	add := func(format string, args ...interface{}) {
		sb = append(sb, fmt.Sprintf(format, args...)...)
	}
	add("records:       %d (%d loads, %d stores)\n", a.Records, a.Loads, a.Stores)
	add("instructions:  %d (mean gap %.1f)\n", a.Instructions, a.MeanGap)
	add("footprint:     %d lines (%.1f MB)\n", a.UniqueLines, float64(a.FootprintBytes)/(1<<20))
	total := a.SameLine + a.UpStrides + a.DownStrides
	if a.Records > 1 {
		add("transitions:   %.1f%% same-line, %.1f%% +1, %.1f%% -1 (of %d)\n",
			100*float64(a.SameLine)/float64(a.Records-1),
			100*float64(a.UpStrides)/float64(a.Records-1),
			100*float64(a.DownStrides)/float64(a.Records-1),
			a.Records-1)
	}
	_ = total
	return string(sb)
}

// TopStrides returns the k most common absolute line strides (1..16,
// where 16 aggregates ">= 16") in descending frequency order.
func (a Analysis) TopStrides(k int) []int {
	type sc struct {
		stride int
		count  uint64
	}
	all := make([]sc, 0, 16)
	for s := 1; s <= 16; s++ {
		if c := a.LineStrides.Count(s); c > 0 {
			all = append(all, sc{s, c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].stride < all[j].stride
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].stride
	}
	return out
}
