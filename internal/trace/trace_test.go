package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"asdsim/internal/mem"
)

func TestOpString(t *testing.T) {
	if Load.String() != "Load" || Store.String() != "Store" {
		t.Errorf("Op strings: %v %v", Load, Store)
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{{Gap: 1, Op: Load, Addr: 100}, {Gap: 2, Op: Store, Addr: 200}}
	s := NewSliceSource(recs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("Collect = %v, want %v", got, recs)
	}
	if _, ok := s.Next(); ok {
		t.Errorf("exhausted source returned a record")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != recs[0] {
		t.Errorf("Reset did not rewind")
	}
}

func TestCollectMax(t *testing.T) {
	recs := []Record{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	got := Collect(NewSliceSource(recs), 2)
	if len(got) != 2 || got[1].Addr != 2 {
		t.Errorf("Collect(2) = %v", got)
	}
}

func TestLimit(t *testing.T) {
	recs := []Record{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	got := Collect(Limit(NewSliceSource(recs), 2), 0)
	if len(got) != 2 {
		t.Errorf("Limit(2) yielded %d records", len(got))
	}
	got = Collect(Limit(NewSliceSource(recs), 0), 0)
	if len(got) != 0 {
		t.Errorf("Limit(0) yielded %d records", len(got))
	}
}

func roundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	r := NewReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("Reader error: %v", r.Err())
	}
	return got
}

func TestBinaryRoundTripBasic(t *testing.T) {
	recs := []Record{
		{Gap: 0, Op: Load, Addr: 0},
		{Gap: 7, Op: Store, Addr: 128},
		{Gap: 1 << 20, Op: Load, Addr: 0xDEADBEEF},
		{Gap: 3, Op: Load, Addr: 64}, // address going down: negative delta
	}
	got := roundTrip(t, recs)
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, recs)
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Errorf("empty trace round trip = %v", got)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, addrs []uint32, ops []bool) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(ops) < n {
			n = len(ops)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			op := Load
			if ops[i] {
				op = Store
			}
			recs[i] = Record{Gap: uint32(gaps[i]), Op: op, Addr: mem.Addr(addrs[i])}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		got := Collect(r, 0)
		if r.Err() != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE....")))
	if _, ok := r.Next(); ok {
		t.Fatal("Next succeeded on bad magic")
	}
	if r.Err() != ErrBadMagic {
		t.Errorf("Err = %v, want ErrBadMagic", r.Err())
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Gap: 5, Op: Load, Addr: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop off the final byte: the record becomes unreadable.
	data := buf.Bytes()[:buf.Len()-1]
	r := NewReader(bytes.NewReader(data))
	if _, ok := r.Next(); ok {
		t.Fatal("Next succeeded on truncated record")
	}
	if r.Err() == nil {
		t.Error("truncated stream should report an error")
	}
}

func TestReaderInvalidOp(t *testing.T) {
	// magic + gap=0 + op=9 + delta=0
	data := append([]byte("ASD1"), 0x00, 0x09, 0x00)
	r := NewReader(bytes.NewReader(data))
	if _, ok := r.Next(); ok {
		t.Fatal("Next succeeded on invalid op")
	}
	if r.Err() == nil {
		t.Error("invalid op should report an error")
	}
}

func TestReaderEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, ok := r.Next(); ok {
		t.Fatal("Next succeeded on empty stream")
	}
	if r.Err() != nil {
		t.Errorf("zero-byte stream is clean EOF, got %v", r.Err())
	}
}

func TestUniformSamples(t *testing.T) {
	s := UniformSamples(1000, 10, 5)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	for i, smp := range s {
		if smp.Instructions != 10 {
			t.Errorf("sample %d len = %d", i, smp.Instructions)
		}
		if i > 0 && smp.SkipInstructions <= s[i-1].SkipInstructions {
			t.Errorf("samples not increasing at %d", i)
		}
	}
	// Degenerate: requested more than available.
	s = UniformSamples(100, 50, 5)
	if len(s) != 1 || s[0].Instructions != 100 {
		t.Errorf("degenerate plan = %v", s)
	}
	if UniformSamples(0, 10, 5) != nil || UniformSamples(100, 0, 5) != nil || UniformSamples(100, 10, 0) != nil {
		t.Error("invalid plans should be nil")
	}
}

func TestSampledSource(t *testing.T) {
	// 10 records, each 1 instruction (gap 0): positions 0..9.
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{Op: Load, Addr: mem.Addr(i * 128)}
	}
	samples := []Sample{{SkipInstructions: 2, Instructions: 3}, {SkipInstructions: 7, Instructions: 2}}
	ss := NewSampledSource(NewSliceSource(recs), samples)
	got := Collect(ss, 0)
	wantAddrs := []mem.Addr{2 * 128, 3 * 128, 4 * 128, 7 * 128, 8 * 128}
	if len(got) != len(wantAddrs) {
		t.Fatalf("got %d records %v, want %d", len(got), got, len(wantAddrs))
	}
	for i, w := range wantAddrs {
		if got[i].Addr != w {
			t.Errorf("record %d addr = %d, want %d", i, got[i].Addr, w)
		}
	}
}

func TestSampledSourceWithGaps(t *testing.T) {
	// Records at instruction positions: rec0 ends at 5 (gap 4 + 1),
	// rec1 ends at 10, rec2 at 15.
	recs := []Record{
		{Gap: 4, Op: Load, Addr: 0},
		{Gap: 4, Op: Load, Addr: 128},
		{Gap: 4, Op: Load, Addr: 256},
	}
	// Window covering positions [5,10): only rec1 (start pos 5).
	ss := NewSampledSource(NewSliceSource(recs), []Sample{{SkipInstructions: 5, Instructions: 5}})
	got := Collect(ss, 0)
	if len(got) != 1 || got[0].Addr != 128 {
		t.Errorf("got %v, want just addr 128", got)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	recs := make([]Record, 4096)
	for i := range recs {
		recs[i] = Record{Gap: uint32(rng.Intn(100)), Op: Op(rng.Intn(2)), Addr: mem.Addr(rng.Uint64() >> 20)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
