package trace

import (
	"bytes"
	"testing"

	"asdsim/internal/mem"
)

// encodeRecords renders recs in the binary format, failing on writer
// errors (a bytes.Buffer cannot fail).
func encodeRecords(t testing.TB, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// FuzzTraceCodec feeds arbitrary bytes to the binary trace reader.
// Malformed input must fail cleanly (never panic, never loop), and
// whatever prefix does decode must survive an encode/decode round
// trip unchanged — the canonicalization property the farm relies on
// when it re-materializes traces from disk.
func FuzzTraceCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ASD1"))
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{'A', 'S', 'D', '1', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(encodeRecords(f, []Record{
		{Gap: 0, Op: Load, Addr: 0},
		{Gap: 17, Op: Store, Addr: 64},
		{Gap: 1 << 31, Op: Load, Addr: 1 << 40},
		{Gap: 3, Op: Load, Addr: 0}, // negative delta
	}))
	f.Add(append(encodeRecords(f, []Record{{Gap: 5, Op: Store, Addr: 4096}}), 0x80)) // truncated tail

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRecords = 1 << 16
		r := NewReader(bytes.NewReader(data))
		var recs []Record
		for len(recs) < maxRecords {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if rec.Op > Store {
				t.Fatalf("reader produced invalid op %d", rec.Op)
			}
			recs = append(recs, rec)
		}
		// r.Err() may or may not be set — malformed tails are expected.
		// Re-encoding the decoded prefix must round-trip exactly.
		buf := encodeRecords(t, recs)
		r2 := NewReader(bytes.NewReader(buf))
		for i, want := range recs {
			got, ok := r2.Next()
			if !ok {
				t.Fatalf("round trip lost record %d/%d (reader err: %v)", i, len(recs), r2.Err())
			}
			if got != want {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, want, got)
			}
		}
		if extra, ok := r2.Next(); ok {
			t.Fatalf("round trip invented record %+v", extra)
		}
		if err := r2.Err(); err != nil {
			t.Fatalf("round trip of valid records errored: %v", err)
		}
	})
}

// FuzzTraceEncode drives the codec from the record side: any sequence
// of in-range records derived from the fuzz input must encode and
// decode back to itself.
func FuzzTraceEncode(f *testing.F) {
	f.Add(uint32(0), uint64(0), uint64(1), byte(1))
	f.Add(uint32(1<<32-1), uint64(1)<<63, uint64(977), byte(2))
	f.Fuzz(func(t *testing.T, gap uint32, addr, stride uint64, n byte) {
		recs := make([]Record, 0, int(n))
		for i := 0; i < int(n); i++ {
			op := Load
			if i%3 == 0 {
				op = Store
			}
			recs = append(recs, Record{
				Gap:  gap + uint32(i),
				Op:   op,
				Addr: mem.Addr(addr + uint64(i)*stride),
			})
		}
		buf := encodeRecords(t, recs)
		r := NewReader(bytes.NewReader(buf))
		got := Collect(r, 0)
		if err := r.Err(); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("decoded %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d: %+v -> %+v", i, recs[i], got[i])
			}
		}
	})
}
