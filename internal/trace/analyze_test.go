package trace

import (
	"strings"
	"testing"

	"asdsim/internal/mem"
)

func lineRec(line int, op Op, gap uint32) Record {
	return Record{Gap: gap, Op: op, Addr: mem.Addr(line) * mem.LineSize}
}

func TestAnalyzeBasics(t *testing.T) {
	recs := []Record{
		lineRec(10, Load, 4),
		lineRec(11, Load, 4),  // +1
		lineRec(11, Store, 4), // same line
		lineRec(10, Load, 4),  // -1
		lineRec(50, Load, 4),  // far jump
	}
	a := Analyze(NewSliceSource(recs), 0)
	if a.Records != 5 || a.Loads != 4 || a.Stores != 1 {
		t.Fatalf("mix: %+v", a)
	}
	if a.Instructions != 25 {
		t.Errorf("Instructions = %d, want 25", a.Instructions)
	}
	if a.MeanGap != 4 {
		t.Errorf("MeanGap = %v", a.MeanGap)
	}
	if a.UniqueLines != 3 || a.FootprintBytes != 3*mem.LineSize {
		t.Errorf("footprint: %d lines", a.UniqueLines)
	}
	if a.UpStrides != 1 || a.DownStrides != 1 || a.SameLine != 1 {
		t.Errorf("transitions: up=%d down=%d same=%d", a.UpStrides, a.DownStrides, a.SameLine)
	}
	// The far jump (39 lines) clamps into the 16 bucket.
	if a.LineStrides.Count(16) != 1 {
		t.Errorf("jump not recorded: %v", a.LineStrides)
	}
}

func TestAnalyzeMaxRecords(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = lineRec(i, Load, 0)
	}
	a := Analyze(NewSliceSource(recs), 4)
	if a.Records != 4 {
		t.Errorf("Records = %d, want 4", a.Records)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(NewSliceSource(nil), 0)
	if a.Records != 0 || a.MeanGap != 0 {
		t.Errorf("empty analysis: %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "records:") {
		t.Errorf("String() = %q", s)
	}
}

func TestAnalyzeString(t *testing.T) {
	recs := []Record{lineRec(1, Load, 0), lineRec(2, Load, 0)}
	s := Analyze(NewSliceSource(recs), 0).String()
	for _, want := range []string{"records:", "instructions:", "footprint:", "transitions:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

func TestTopStrides(t *testing.T) {
	recs := []Record{
		lineRec(0, Load, 0),
		lineRec(1, Load, 0),  // stride 1
		lineRec(2, Load, 0),  // stride 1
		lineRec(5, Load, 0),  // stride 3
		lineRec(6, Load, 0),  // stride 1
		lineRec(9, Load, 0),  // stride 3
		lineRec(14, Load, 0), // stride 5
	}
	a := Analyze(NewSliceSource(recs), 0)
	top := a.TopStrides(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopStrides = %v, want [1 3]", top)
	}
	if got := a.TopStrides(100); len(got) != 3 {
		t.Errorf("all strides = %v", got)
	}
}
