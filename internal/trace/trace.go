// Package trace defines the execution-trace representation that drives the
// simulator, plus binary and text codecs for storing traces on disk and a
// uniform sampler mirroring the paper's methodology (50 uniformly chosen
// samples of 2M instructions each).
//
// A trace is a flat sequence of records. Each record describes one memory
// operation together with the number of non-memory instructions that
// precede it, which is all the timing model needs: compute instructions
// are accounted analytically, memory operations walk the cache hierarchy.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"asdsim/internal/mem"
)

// Op is the kind of memory operation a record performs.
type Op uint8

const (
	// Load is a data read.
	Load Op = iota
	// Store is a data write.
	Store
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Store {
		return "Store"
	}
	return "Load"
}

// Record is one memory operation in a trace.
type Record struct {
	// Gap is the number of non-memory instructions executed before this
	// operation (since the previous record).
	Gap uint32
	// Op is the operation kind.
	Op Op
	// Addr is the virtual=physical byte address accessed.
	Addr mem.Addr
}

// Source produces trace records. Workload generators and file readers both
// implement Source. Next returns ok=false when the trace is exhausted.
type Source interface {
	Next() (rec Record, ok bool)
}

// SliceSource adapts a []Record to a Source.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource returns a Source reading from recs.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Pos returns the index of the record the next Next call will return.
func (s *SliceSource) Pos() int { return s.pos }

// Skip advances the cursor n records without reading them, clamped to
// the end of the slice. Callers skipping records are responsible for
// accounting their retirement (see cpu.Thread.SkipRetired).
func (s *SliceSource) Skip(n int) {
	s.pos += n
	if s.pos > len(s.recs) {
		s.pos = len(s.recs)
	}
}

// Len returns the total number of records.
func (s *SliceSource) Len() int { return len(s.recs) }

// Collect drains up to max records from src (all records if max <= 0).
func Collect(src Source, max int) []Record {
	var out []Record
	for max <= 0 || len(out) < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Limit wraps src, stopping after n records.
func Limit(src Source, n int) Source { return &limitSource{src: src, n: n} }

type limitSource struct {
	src Source
	n   int
}

func (l *limitSource) Next() (Record, bool) {
	if l.n <= 0 {
		return Record{}, false
	}
	l.n--
	return l.src.Next()
}

// magic identifies the binary trace file format, version 1.
var magic = [4]byte{'A', 'S', 'D', '1'}

// Writer encodes records to a compact binary stream. The format is:
// 4-byte magic, then per record: uvarint gap, one op byte, uvarint
// delta-encoded address (zig-zag against the previous address).
type Writer struct {
	w        *bufio.Writer
	prevAddr mem.Addr
	started  bool
	count    uint64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if !tw.started {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.started = true
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(r.Gap))
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return err
	}
	if err := tw.w.WriteByte(byte(r.Op)); err != nil {
		return err
	}
	delta := int64(r.Addr) - int64(tw.prevAddr)
	n = binary.PutVarint(buf[:], delta)
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return err
	}
	tw.prevAddr = r.Addr
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered output. Callers must Flush before closing the
// underlying writer.
func (tw *Writer) Flush() error {
	if !tw.started {
		// An empty trace still carries the magic so readers can
		// distinguish "empty trace" from "not a trace".
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.started = true
	}
	return tw.w.Flush()
}

// ErrBadMagic reports that a stream is not a binary trace.
var ErrBadMagic = errors.New("trace: bad magic (not an ASD1 trace stream)")

// Reader decodes the binary stream produced by Writer. It implements
// Source; decode errors terminate the stream and are available via Err.
type Reader struct {
	r        *bufio.Reader
	prevAddr mem.Addr
	started  bool
	err      error
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Err returns the first error encountered (nil on clean EOF).
func (tr *Reader) Err() error { return tr.err }

// Next implements Source.
func (tr *Reader) Next() (Record, bool) {
	if tr.err != nil {
		return Record{}, false
	}
	if !tr.started {
		var m [4]byte
		if _, err := io.ReadFull(tr.r, m[:]); err != nil {
			tr.fail(err)
			return Record{}, false
		}
		if m != magic {
			tr.err = ErrBadMagic
			return Record{}, false
		}
		tr.started = true
	}
	gap, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.fail(err)
		return Record{}, false
	}
	if gap > 1<<32-1 {
		tr.err = fmt.Errorf("trace: gap %d overflows uint32", gap)
		return Record{}, false
	}
	opb, err := tr.r.ReadByte()
	if err != nil {
		tr.fail(err)
		return Record{}, false
	}
	if opb > byte(Store) {
		tr.err = fmt.Errorf("trace: invalid op byte %#x", opb)
		return Record{}, false
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		tr.fail(err)
		return Record{}, false
	}
	addr := mem.Addr(int64(tr.prevAddr) + delta)
	tr.prevAddr = addr
	return Record{Gap: uint32(gap), Op: Op(opb), Addr: addr}, true
}

// fail records err unless it is a clean EOF at a record boundary.
func (tr *Reader) fail(err error) {
	if err == io.EOF {
		return // clean end of trace
	}
	if err == io.ErrUnexpectedEOF {
		tr.err = fmt.Errorf("trace: truncated record: %w", err)
		return
	}
	tr.err = err
}

// Sample describes one uniform sample of a longer execution, mirroring the
// paper's 50-samples-of-2M-instructions methodology.
type Sample struct {
	// SkipInstructions is how many instructions (memory and compute) to
	// fast-forward before the sample begins.
	SkipInstructions uint64
	// Instructions is the sample length in instructions.
	Instructions uint64
}

// UniformSamples slices a run of totalInstructions into count samples of
// sampleLen instructions each, uniformly spaced. It returns fewer samples
// when the run is too short for the requested plan.
func UniformSamples(totalInstructions, sampleLen uint64, count int) []Sample {
	if count <= 0 || sampleLen == 0 || totalInstructions == 0 {
		return nil
	}
	if sampleLen*uint64(count) >= totalInstructions {
		// Degenerate: the whole run is one sample.
		return []Sample{{SkipInstructions: 0, Instructions: totalInstructions}}
	}
	stride := totalInstructions / uint64(count)
	samples := make([]Sample, 0, count)
	for i := 0; i < count; i++ {
		start := uint64(i) * stride
		if start+sampleLen > totalInstructions {
			break
		}
		samples = append(samples, Sample{SkipInstructions: start, Instructions: sampleLen})
	}
	return samples
}

// SampledSource passes through records of src that fall inside the sample
// windows, skipping (but still counting) instructions outside them. Gap
// instructions count toward instruction positions.
type SampledSource struct {
	src     Source
	samples []Sample
	// pos is the absolute instruction position consumed so far.
	pos uint64
	cur int
}

// NewSampledSource wraps src with the given sample plan. Samples must be
// sorted by SkipInstructions and non-overlapping (as produced by
// UniformSamples).
func NewSampledSource(src Source, samples []Sample) *SampledSource {
	return &SampledSource{src: src, samples: samples}
}

// Next implements Source.
func (ss *SampledSource) Next() (Record, bool) {
	for {
		if ss.cur >= len(ss.samples) {
			return Record{}, false
		}
		s := ss.samples[ss.cur]
		rec, ok := ss.src.Next()
		if !ok {
			return Record{}, false
		}
		recStart := ss.pos
		ss.pos += uint64(rec.Gap) + 1
		switch {
		case ss.pos <= s.SkipInstructions:
			// Entirely before the window: skip.
			continue
		case recStart >= s.SkipInstructions+s.Instructions:
			// Past the window: advance to next sample and
			// reconsider this record against it.
			ss.cur++
			ss.pos = recStart // rewind accounting; re-add below
			ss.pos += uint64(rec.Gap) + 1
			if ss.cur >= len(ss.samples) {
				return Record{}, false
			}
			next := ss.samples[ss.cur]
			if recStart >= next.SkipInstructions && recStart < next.SkipInstructions+next.Instructions {
				return rec, true
			}
			continue
		default:
			return rec, true
		}
	}
}
