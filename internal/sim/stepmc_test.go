package sim

import (
	"testing"

	"asdsim/internal/mem"
)

// TestStepMCToGuards pins the clock arithmetic of the background MC
// stepper: the idle jump stays MC-cycle aligned, a target inside (or
// behind) the current MC cycle makes no progress, and the NextWake
// fast-forward never oversteps the target even when the wake cycle lies
// beyond it.
func TestStepMCToGuards(t *testing.T) {
	r, err := newRunnerForTest("GemsFDTD", Default(NP, 1000))
	if err != nil {
		t.Fatal(err)
	}

	// Idle controller: jump straight to the aligned target, no stepping.
	r.stepMCTo(103)
	if r.mcNow != 100 {
		t.Fatalf("idle jump: mcNow = %d, want 100 (103 aligned down)", r.mcNow)
	}

	// Target inside the current MC cycle: nothing to do.
	r.stepMCTo(101)
	if r.mcNow != 100 {
		t.Fatalf("in-cycle target moved the clock to %d", r.mcNow)
	}

	// Target behind the clock: must not move backwards.
	r.stepMCTo(50)
	if r.mcNow != 100 {
		t.Fatalf("past target moved the clock to %d", r.mcNow)
	}

	// Put one read in flight so only DRAM completion work remains; its
	// wake cycle is tens of CPU cycles out.
	r.cmdID++
	r.ctrl.Enqueue(mem.Command{Kind: mem.Read, Line: 42, Arrival: r.mcNow, ID: r.cmdID})
	for i := 0; i < 16 && r.ctrl.NextWake(r.mcNow) == r.mcNow+mem.CPUCyclesPerMCCycle; i++ {
		r.stepMCTo(r.mcNow + mem.CPUCyclesPerMCCycle)
	}
	wake := r.ctrl.NextWake(r.mcNow)
	if wake == ^uint64(0) || wake <= r.mcNow+mem.CPUCyclesPerMCCycle {
		t.Fatalf("expected a distant wake with a read in flight, got %d (mcNow %d)", wake, r.mcNow)
	}

	// Fast-forward with a target short of the wake: the clock advances to
	// the aligned target and stops — it must not jump to the wake cycle.
	target := r.mcNow + 2*mem.CPUCyclesPerMCCycle + 2 // mid-cycle, before wake
	if target >= wake {
		t.Fatalf("test setup: target %d not short of wake %d", target, wake)
	}
	r.stepMCTo(target)
	if want := target - target%mem.CPUCyclesPerMCCycle; r.mcNow != want {
		t.Fatalf("short target: mcNow = %d, want %d", r.mcNow, want)
	}
	if r.mcNow > target {
		t.Fatalf("stepMCTo overshot target: %d > %d", r.mcNow, target)
	}

	// Fast-forward past the wake: the clock lands on an MC-cycle boundary
	// at or after the wake, still bounded by the target.
	target = wake + 3*mem.CPUCyclesPerMCCycle
	r.stepMCTo(target)
	if r.mcNow%mem.CPUCyclesPerMCCycle != 0 {
		t.Fatalf("mcNow %d not MC-cycle aligned", r.mcNow)
	}
	if r.mcNow > target {
		t.Fatalf("stepMCTo overshot target: %d > %d", r.mcNow, target)
	}
}
