package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A cancelled context must abort the run promptly with the context's
// error instead of completing the instruction budget.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, "GemsFDTD", Default(PMS, 50_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// A deadline must interrupt a run that would otherwise take far longer.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, "GemsFDTD", Default(PMS, 1_000_000_000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the loop is not observing ctx", elapsed)
	}
}

// RunContext with a background context must match Run bit for bit: the
// cancellation plumbing cannot perturb the simulation.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := Default(PMS, 100_000)
	a, err := Run("milc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), "milc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.IPC != b.IPC {
		t.Fatalf("Run and RunContext diverge: %+v vs %+v", a, b)
	}
}

// An out-of-range engine kind is a configuration error, not a panic.
func TestValidateRejectsUnknownEngine(t *testing.T) {
	cfg := Default(MS, 1000)
	cfg.Engine = EngineKind(99)
	if _, err := Run("GemsFDTD", cfg); err == nil {
		t.Fatal("expected error for unknown engine kind")
	}
}

func TestParseModeAndEngine(t *testing.T) {
	for s, want := range map[string]Mode{"np": NP, "PS": PS, " ms ": MS, "pms": PMS} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
	for s, want := range map[string]EngineKind{
		"asd": EngineASD, "next-line": EngineNextLine, "nextline": EngineNextLine,
		"p5-style": EngineP5Style, "p5": EngineP5Style, "GHB": EngineGHB,
	} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("ParseEngine accepted bogus engine")
	}
}
