package sim

import (
	"testing"
)

const testBudget = 300_000

func run(t *testing.T, bench string, mode Mode) Result {
	t.Helper()
	cfg := Default(mode, testBudget)
	res, err := Run(bench, cfg)
	if err != nil {
		t.Fatalf("Run(%s, %v): %v", bench, mode, err)
	}
	return res
}

func TestModeAndEngineStrings(t *testing.T) {
	if NP.String() != "NP" || PS.String() != "PS" || MS.String() != "MS" || PMS.String() != "PMS" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
	if EngineASD.String() != "asd" || EngineNextLine.String() != "next-line" || EngineP5Style.String() != "p5-style" {
		t.Error("engine strings wrong")
	}
	if EngineKind(9).String() != "EngineKind(9)" {
		t.Error("unknown engine string")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Default(NP, 1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"mode":    func(c *Config) { c.Mode = Mode(9) },
		"threads": func(c *Config) { c.Threads = 3 },
		"budget":  func(c *Config) { c.InstrBudget = 0 },
		"window":  func(c *Config) { c.Window = 0 },
	}
	for name, f := range cases {
		c := Default(NP, 1000)
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("nosuch", Default(NP, 1000)); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestRunCompletesAndAccounts(t *testing.T) {
	res := run(t, "GemsFDTD", NP)
	if res.Instructions < testBudget {
		t.Errorf("Instructions = %d, want >= %d", res.Instructions, testBudget)
	}
	if res.Cycles == 0 || res.IPC <= 0 {
		t.Errorf("Cycles=%d IPC=%v", res.Cycles, res.IPC)
	}
	if res.MC.RegularReads == 0 {
		t.Error("no reads reached the MC for a memory-bound benchmark")
	}
	if res.DRAM.Reads == 0 {
		t.Error("no DRAM reads")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := run(t, "tonto", PMS)
	b := run(t, "tonto", PMS)
	if a.Cycles != b.Cycles || a.MC != b.MC {
		t.Errorf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// The paper's headline ordering: PMS must beat PS and NP; MS must beat NP
// on stream-rich, memory-bound workloads.
func TestPrefetchingOrderingOnStreamingWorkload(t *testing.T) {
	np := run(t, "bwaves", NP)
	ps := run(t, "bwaves", PS)
	ms := run(t, "bwaves", MS)
	pms := run(t, "bwaves", PMS)
	t.Logf("bwaves cycles: NP=%d PS=%d MS=%d PMS=%d", np.Cycles, ps.Cycles, ms.Cycles, pms.Cycles)
	if ps.Cycles >= np.Cycles {
		t.Errorf("PS (%d) should beat NP (%d)", ps.Cycles, np.Cycles)
	}
	if ms.Cycles >= np.Cycles {
		t.Errorf("MS (%d) should beat NP (%d)", ms.Cycles, np.Cycles)
	}
	if pms.Cycles >= ps.Cycles {
		t.Errorf("PMS (%d) should beat PS (%d)", pms.Cycles, ps.Cycles)
	}
}

// Commercial workloads have low spatial locality; MS should still help
// (the paper's central claim) via short streams.
func TestMSHelpsCommercialWorkload(t *testing.T) {
	np := run(t, "notesbench", NP)
	ms := run(t, "notesbench", MS)
	t.Logf("notesbench cycles: NP=%d MS=%d (gain %.1f%%)", np.Cycles, ms.Cycles,
		100*(float64(np.Cycles)/float64(ms.Cycles)-1))
	if ms.Cycles >= np.Cycles {
		t.Errorf("MS (%d) should beat NP (%d) on commercial workload", ms.Cycles, np.Cycles)
	}
}

// Cache-resident benchmarks must see almost no effect from prefetching.
func TestCacheResidentUnaffected(t *testing.T) {
	np := run(t, "namd", NP)
	pms := run(t, "namd", PMS)
	ratio := float64(np.Cycles) / float64(pms.Cycles)
	if ratio < 0.98 || ratio > 1.05 {
		t.Errorf("namd NP/PMS cycle ratio = %.3f, want ~1.0", ratio)
	}
}

func TestFig13MetricsInRange(t *testing.T) {
	res := run(t, "milc", PMS)
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Errorf("coverage = %v", res.Coverage)
	}
	if res.UsefulPrefetchFrac <= 0 || res.UsefulPrefetchFrac > 1 {
		t.Errorf("useful = %v", res.UsefulPrefetchFrac)
	}
	if res.DelayedRegularFrac < 0 || res.DelayedRegularFrac > 0.25 {
		t.Errorf("delayed = %v", res.DelayedRegularFrac)
	}
}

func TestSLHHistogramsPopulated(t *testing.T) {
	res := run(t, "GemsFDTD", MS)
	if res.TrueLengths.Total() == 0 {
		t.Error("true lengths empty")
	}
	if res.ApproxLengths == nil || res.ApproxLengths.Total() == 0 {
		t.Error("approx lengths empty")
	}
	if res.LastEpochSLH == nil || res.LastEpochSLH.Total() == 0 {
		t.Error("epoch SLH empty")
	}
	// The filter approximation should track ground truth reasonably
	// (paper Fig. 16): L1 distance over the 16-bucket distribution.
	d := res.TrueLengths.L1Distance(res.ApproxLengths)
	t.Logf("SLH approximation L1 distance = %.3f", d)
	if d > 0.6 {
		t.Errorf("approximation too far from truth: %v vs %v", res.ApproxLengths, res.TrueLengths)
	}
}

func TestSMTRuns(t *testing.T) {
	cfg := Default(PMS, testBudget/2)
	cfg.Threads = 2
	res, err := Run("milc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < testBudget-2 {
		t.Errorf("SMT instructions = %d", res.Instructions)
	}
}

func TestDRAMEnergyPositive(t *testing.T) {
	res := run(t, "lbm", PMS)
	if res.DRAM.EnergyNJ <= 0 || res.DRAM.AvgPowerWatts <= 0 {
		t.Errorf("DRAM power/energy: %+v", res.DRAM)
	}
}

func TestBaselineEnginesRun(t *testing.T) {
	for _, ek := range []EngineKind{EngineNextLine, EngineP5Style} {
		cfg := Default(MS, testBudget/3)
		cfg.Engine = ek
		res, err := Run("milc", cfg)
		if err != nil {
			t.Fatalf("%v: %v", ek, err)
		}
		if res.MC.PrefetchesToDRAM == 0 {
			t.Errorf("%v issued no prefetches", ek)
		}
	}
}
