package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestGoldenBatchMatchesSerial extends the golden determinism contract
// to the shared-trace path: every cell of the 16-cell golden matrix run
// through Batch must serialize byte-identically to the committed golden
// Result of the serial sim.Run path. One Batch serves the whole matrix,
// so all eight cells of a benchmark replay a single materialized trace.
func TestGoldenBatchMatchesSerial(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	b := NewBatch()
	for _, bench := range []string{"GemsFDTD", "milc"} {
		for _, cfg := range goldenMatrix() {
			name := goldenName(bench, cfg)
			t.Run(name, func(t *testing.T) {
				res, err := b.Run(bench, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				want, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("batched Result JSON diverged from golden %s — shared-trace path must be bit-identical to sim.Run", name)
				}
			})
		}
	}
	st := b.CacheStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("expected trace reuse across the matrix, got stats %+v", st)
	}
	// 2 benchmarks × 1 thread × one (seed, budget) each → 2 generations;
	// the other 14 cells are hits.
	if st.Misses != 2 {
		t.Errorf("expected 2 trace generations for 2 benchmarks, got %d", st.Misses)
	}
}

// TestBatchFanOutRace runs many cells concurrently against one Batch —
// shared read-only trace, per-cell private state — and checks each
// against the serial path. Run under -race this is the data-race proof
// for the fan-out design.
func TestBatchFanOutRace(t *testing.T) {
	cfgs := goldenMatrix()
	b := NewBatch()
	type cell struct {
		bench string
		cfg   Config
	}
	var cells []cell
	for _, bench := range []string{"GemsFDTD", "milc"} {
		for _, cfg := range cfgs {
			cells = append(cells, cell{bench, cfg})
		}
	}
	got := make([]Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			got[i], errs[i] = b.RunContext(context.Background(), c.bench, c.cfg)
		}(i, c)
	}
	wg.Wait()
	for i, c := range cells {
		if errs[i] != nil {
			t.Fatalf("cell %s/%s/%s: %v", c.bench, c.cfg.Mode, c.cfg.Engine, errs[i])
		}
		want, err := Run(c.bench, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(got[i])
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("cell %s/%s/%s: concurrent batched result differs from serial", c.bench, c.cfg.Mode, c.cfg.Engine)
		}
	}
}

// TestBatchRunAll covers the serial driver: results arrive in cell
// order and match the direct path.
func TestBatchRunAll(t *testing.T) {
	b := NewBatch()
	cfg := Default(PMS, goldenBudget)
	cells := []BatchCell{
		{Benchmark: "GemsFDTD", Config: cfg},
		{Benchmark: "milc", Config: cfg},
	}
	results, err := b.RunAll(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, c := range cells {
		if results[i].Benchmark != c.Benchmark {
			t.Errorf("result %d: benchmark %q, want %q", i, results[i].Benchmark, c.Benchmark)
		}
		want, err := Run(c.Benchmark, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(results[i])
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("RunAll result %d differs from serial Run", i)
		}
	}
}

// TestBatchInvalidBenchmark checks error paths: unknown benchmarks and
// invalid configs fail without caching anything.
func TestBatchInvalidBenchmark(t *testing.T) {
	b := NewBatch()
	if _, err := b.Run("no-such-benchmark", Default(NP, goldenBudget)); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	bad := Default(NP, goldenBudget)
	bad.Threads = 0
	if _, err := b.Run("GemsFDTD", bad); err == nil {
		t.Fatal("expected error for invalid config")
	}
	if st := b.CacheStats(); st.Entries != 0 {
		t.Errorf("failed runs must not populate the cache: %+v", st)
	}
}
