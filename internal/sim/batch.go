package sim

import (
	"context"
	"time"

	"asdsim/internal/cpu"
	"asdsim/internal/trace"
	"asdsim/internal/workload"
)

// Batch runs many matrix cells over shared materialized workload
// traces: each benchmark's trace is generated once (per seed, thread
// and budget) and every (mode, engine, depth) cell replays it through
// a private cursor. Exact-mode outcomes are bit-for-bit identical to
// sim.Run — record consumption depends only on the trace source and
// the instruction budget, never on memory-system timing — so the only
// thing shared between cells is immutable trace data.
//
// A Batch is safe for concurrent use: cells may run in parallel from
// many goroutines against one Batch.
type Batch struct {
	cache *workload.TraceCache
}

// NewBatch returns a Batch with a default-bounded trace cache.
func NewBatch() *Batch { return NewBatchSize(0) }

// NewBatchSize returns a Batch whose trace cache is bounded to
// maxBytes (values <= 0 use workload.DefaultTraceCacheBytes).
func NewBatchSize(maxBytes int64) *Batch {
	return &Batch{cache: workload.NewTraceCache(maxBytes)}
}

// CacheStats reports trace-cache effectiveness: (Misses) traces
// generated, (Hits) cells that reused one.
func (b *Batch) CacheStats() workload.TraceCacheStats { return b.cache.Stats() }

// Run simulates benchmark bench under cfg, reusing the batch's
// materialized trace for (bench, cfg.Seed, cfg.Threads, cfg.InstrBudget)
// across calls. Results are bit-identical to sim.Run(bench, cfg).
func (b *Batch) Run(bench string, cfg Config) (Result, error) {
	return b.RunContext(context.Background(), bench, cfg)
}

// RunContext is Run with cancellation.
func (b *Batch) RunContext(ctx context.Context, bench string, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now() //asd:allow determinism wall-clock throughput stamp; excluded from serialized Results
	r, err := b.buildRunner(bench, cfg)
	if err != nil {
		return Result{}, err
	}
	if err := r.loop(ctx); err != nil {
		return Result{}, err
	}
	res := r.collect(bench)
	res.stamp(start)
	return res, nil
}

// RunAll runs every (benchmark, config) cell sequentially through the
// shared-trace path, in order. Callers wanting parallelism should fan
// out their own goroutines over RunContext (the farm does); RunAll is
// the simple serial driver.
func (b *Batch) RunAll(ctx context.Context, cells []BatchCell) ([]Result, error) {
	out := make([]Result, 0, len(cells))
	for _, c := range cells {
		res, err := b.RunContext(ctx, c.Benchmark, c.Config)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// BatchCell is one (benchmark, config) matrix cell for Batch.RunAll.
type BatchCell struct {
	Benchmark string
	Config    Config
}

// buildRunner assembles a runner whose threads replay the batch's
// materialized traces through private cursors, with the ground-truth
// stream-length histograms injected from materialization time.
func (b *Batch) buildRunner(bench string, cfg Config) (*runner, error) {
	prof, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	r := newRunnerShell(cfg)
	for t := 0; t < cfg.Threads; t++ {
		mt, err := b.cache.Get(prof, cfg.Seed, t, cfg.InstrBudget)
		if err != nil {
			return nil, err
		}
		src := trace.NewSliceSource(mt.Records)
		th := cpu.NewThread(t, src, cpu.Config{
			Window:             cfg.Window,
			MaxOutstanding:     cfg.MaxOutstanding,
			BudgetInstructions: cfg.InstrBudget,
		})
		th.SetObserver(r.cfg.Obs)
		r.threads = append(r.threads, th)
		r.trueLens = append(r.trueLens, mt.TrueLengths)
		r.ffRecs = append(r.ffRecs, mt.Records)
		r.ffSrcs = append(r.ffSrcs, src)
	}
	return r, nil
}
