package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"asdsim/internal/cache"
	"asdsim/internal/core"
	"asdsim/internal/cpu"
	"asdsim/internal/dram"
	"asdsim/internal/mc"
	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/prefetch"
	"asdsim/internal/stats"
	"asdsim/internal/trace"
	"asdsim/internal/workload"
)

// Result is the outcome of one simulation run.
type Result struct {
	Benchmark string
	Mode      Mode
	// Cycles is the execution time in CPU cycles (max over threads,
	// after draining outstanding memory traffic).
	Cycles       uint64
	Instructions uint64
	IPC          float64

	MC   mc.Stats
	DRAM dram.Stats

	// StallCycles is the total CPU cycles threads spent blocked on
	// memory.
	StallCycles uint64

	L1HitRate float64
	L2HitRate float64
	L3HitRate float64

	// Coverage, UsefulPrefetchFrac and DelayedRegularFrac are the Fig. 13
	// metrics (zero when memory-side prefetching is off).
	Coverage           float64
	UsefulPrefetchFrac float64
	DelayedRegularFrac float64

	// PSIssued counts processor-side prefetch requests.
	PSIssued uint64

	// TrueLengths is the generator's ground-truth stream-length
	// distribution; ApproxLengths is the Stream Filter's approximation;
	// LastEpochSLH is the final epoch's reads-weighted SLH (ASD engine
	// runs only).
	TrueLengths   *stats.Histogram
	ApproxLengths *stats.Histogram
	LastEpochSLH  *stats.Histogram
	// EpochSLHs is the per-epoch SLH history (populated only when
	// Config.ASD.KeepHistory is set and the ASD engine is in use).
	EpochSLHs []*stats.Histogram

	// PolicyEpochs reports adaptive-scheduling policy residency.
	PolicyEpochs [6]uint64

	// WallSeconds is the host wall-clock duration of the run and
	// CyclesPerSec the simulation rate derived from it. Both are
	// excluded from JSON: they vary run to run, and serialized Results
	// (e.g. the farm's cached artifacts, compared bit-for-bit by the
	// determinism tests) must depend only on simulated behavior.
	WallSeconds  float64 `json:"-"`
	CyclesPerSec float64 `json:"-"`
}

// stamp fills the wall-clock fields from the run's start time.
func (res *Result) stamp(start time.Time) {
	res.WallSeconds = time.Since(start).Seconds() //asd:allow determinism wall-clock throughput stamp; excluded from serialized Results
	if res.WallSeconds > 0 {
		res.CyclesPerSec = float64(res.Cycles) / res.WallSeconds
	}
}

// flightKind classifies an outstanding memory-system read.
type flightKind int

const (
	flightDemand flightKind = iota
	flightPSL1
	flightPSL2
)

// waiter is a thread pending-entry attached to a flight.
type waiter struct {
	th     *cpu.Thread
	pendID uint64
}

// flight is one outstanding line fetch from the memory controller.
// Instances are pooled by the runner: a flight is live from the miss (or
// prefetch launch) until onReadDone retires it, and its waiters slice
// keeps its capacity across recycles.
type flight struct {
	line    mem.Line
	kind    flightKind
	dirty   bool
	needL1  bool
	waiters []waiter
	done    bool
	doneAt  uint64
}

// runner holds one simulation's live state.
type runner struct {
	cfg     Config
	threads []*cpu.Thread
	gens    []*workload.Generator
	hier    *cache.Hierarchy
	dram    *dram.DRAM
	ctrl    *mc.Controller
	ps      *prefetch.PS
	engines []prefetch.MSEngine

	mcNow      uint64
	flights    map[mem.Line]*flight
	flightPool []*flight
	psBusy     int
	cmdID      uint64
	lastLine   []mem.Line // per-thread last accessed line (PS observation)

	// trueLens, when non-nil, are per-thread ground-truth stream-length
	// histograms collected at trace materialization time; collect merges
	// them instead of live generator state (the batched path replays a
	// materialized trace, so there are no live generators).
	trueLens []*stats.Histogram

	// Fast-forward recent-line filter (sampled mode only, one table per
	// thread): a direct-mapped map of line -> last functional access
	// tick. A load to a line touched within ffRecentWindow accesses is
	// a guaranteed L1 hit (the L1 holds 4x as many lines as the window
	// admits distinct ones), so the cache walk is skipped.
	ffSeen   [][]mem.Line
	ffSeenAt [][]uint32
	ffTick   []uint32

	// ffRecs/ffSrcs, when non-nil (batched runners only), expose each
	// thread's materialized records and cursor so reuse-bounded
	// fast-forward can skip runs of records in one bulk step instead of
	// fetching them one at a time.
	ffRecs [][]trace.Record
	ffSrcs []*trace.SliceSource
}

// getFlight takes a flight from the pool (preserving waiters capacity)
// and resets its fields.
func (r *runner) getFlight() *flight {
	if n := len(r.flightPool); n > 0 {
		f := r.flightPool[n-1]
		r.flightPool = r.flightPool[:n-1]
		*f = flight{waiters: f.waiters[:0]}
		return f
	}
	return new(flight) //asd:allow hotpath-noalloc pool first-generation growth; steady state recycles via putFlight
}

// putFlight recycles a retired flight. Safe to call from onReadDone even
// though loop() may still read f.done/f.doneAt afterwards: the pool only
// hands the object out again from execute/psMiss, which run strictly
// after those reads.
func (r *runner) putFlight(f *flight) { r.flightPool = append(r.flightPool, f) }

// maxPSOutstanding bounds in-flight processor-side prefetches: eight
// concurrent streams, each keeping an L1-bound and an L2-bound line in
// flight.
const maxPSOutstanding = 16

// ErrDeadlock reports that the simulated memory system reached a state
// where a thread waits on a line that can never arrive — a model bug or
// an inconsistent configuration, never a transient condition.
var ErrDeadlock = errors.New("sim: memory-system deadlock")

// ctxCheckInterval is how many loop iterations pass between context
// cancellation checks; a power of two so the check compiles to a mask.
const ctxCheckInterval = 1024

// Run simulates benchmark bench under cfg and returns the results.
func Run(bench string, cfg Config) (Result, error) {
	return RunContext(context.Background(), bench, cfg)
}

// RunContext is Run with cancellation: the simulation polls ctx between
// event-loop iterations and aborts promptly with ctx's error when it is
// cancelled or its deadline passes.
func RunContext(ctx context.Context, bench string, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now() //asd:allow determinism wall-clock throughput stamp; excluded from serialized Results
	r, err := buildRunner(bench, cfg)
	if err != nil {
		return Result{}, err
	}
	if err := r.loop(ctx); err != nil {
		return Result{}, err
	}
	res := r.collect(bench)
	res.stamp(start)
	return res, nil
}

// RunTrace simulates arbitrary per-thread trace sources (one per
// configured thread) under cfg — the replay path for traces written by
// cmd/tracegen or collected externally. Ground-truth stream statistics
// (Result.TrueLengths) are unavailable in this mode.
func RunTrace(name string, sources []trace.Source, cfg Config) (Result, error) {
	return RunTraceContext(context.Background(), name, sources, cfg)
}

// RunTraceContext is RunTrace with cancellation.
func RunTraceContext(ctx context.Context, name string, sources []trace.Source, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(sources) != cfg.Threads {
		return Result{}, fmt.Errorf("sim: %d trace sources for %d threads", len(sources), cfg.Threads)
	}
	start := time.Now() //asd:allow determinism wall-clock throughput stamp; excluded from serialized Results
	r := newRunnerShell(cfg)
	for t, src := range sources {
		th := cpu.NewThread(t, src, cpu.Config{
			Window:             cfg.Window,
			MaxOutstanding:     cfg.MaxOutstanding,
			BudgetInstructions: cfg.InstrBudget,
		})
		th.SetObserver(r.cfg.Obs)
		r.threads = append(r.threads, th)
	}
	if err := r.loop(ctx); err != nil {
		return Result{}, err
	}
	res := r.collect(name)
	res.stamp(start)
	return res, nil
}

// buildRunner assembles the system for one named-benchmark run.
func buildRunner(bench string, cfg Config) (*runner, error) {
	prof, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	r := newRunnerShell(cfg)
	for t := 0; t < cfg.Threads; t++ {
		g, err := workload.NewGenerator(prof, cfg.Seed, t)
		if err != nil {
			return nil, err
		}
		r.gens = append(r.gens, g)
		th := cpu.NewThread(t, g, cpu.Config{
			Window:             cfg.Window,
			MaxOutstanding:     cfg.MaxOutstanding,
			BudgetInstructions: cfg.InstrBudget,
		})
		th.SetObserver(r.cfg.Obs)
		r.threads = append(r.threads, th)
	}
	return r, nil
}

// newRunnerShell wires the memory system (caches, MC, DRAM, prefetchers)
// without threads.
func newRunnerShell(cfg Config) *runner {
	r := &runner{cfg: cfg, flights: make(map[mem.Line]*flight), lastLine: make([]mem.Line, cfg.Threads)}
	r.hier = cache.NewHierarchy(cfg.Cache)
	r.dram = dram.New(cfg.DRAM)

	var adaptive *core.AdaptiveScheduler
	if cfg.msEnabled() {
		for t := 0; t < cfg.Threads; t++ {
			eng := newEngine(cfg)
			if o, ok := eng.(interface{ SetObserver(*obs.Bus) }); ok {
				o.SetObserver(cfg.Obs)
			}
			if cfg.Prov != nil {
				if e, ok := eng.(*core.Engine); ok {
					e.SetProv(cfg.Prov, int32(t))
				}
			}
			r.engines = append(r.engines, eng)
		}
		adaptive = core.NewAdaptiveScheduler(cfg.Sched)
		adaptive.SetObserver(cfg.Obs)
	}
	r.ctrl = mc.New(cfg.MC, r.dram, r.engines, adaptive)
	r.ctrl.SetReadDone(r.onReadDone)
	r.ctrl.SetObserver(cfg.Obs)
	r.ctrl.SetProv(cfg.Prov)
	r.hier.SetObserver(cfg.Obs)
	r.dram.SetObserver(cfg.Obs)

	if cfg.psEnabled() {
		r.ps = prefetch.NewPS(cfg.PS)
	}
	return r
}

// newEngine builds the configured memory-side engine.
func newEngine(cfg Config) prefetch.MSEngine {
	switch cfg.Engine {
	case EngineASD:
		return core.NewEngine(cfg.ASD)
	case EngineNextLine:
		return prefetch.NewNextLine()
	case EngineP5Style:
		return prefetch.NewP5Style(prefetch.DefaultP5StyleConfig())
	case EngineGHB:
		return prefetch.NewGHB(prefetch.DefaultGHBConfig())
	default:
		panic(fmt.Sprintf("sim: unknown engine kind %d", int(cfg.Engine)))
	}
}

// loop runs all threads to completion and drains the memory system. It
// returns ctx's error when cancelled mid-run, or a model-invariant error
// (e.g. ErrDeadlock) instead of crashing the process, so one bad
// configuration cannot take down a whole batch.
func (r *runner) loop(ctx context.Context) error {
	if err := r.loopUntil(ctx, ^uint64(0)); err != nil {
		return err
	}
	return r.drainMC(ctx)
}

// loopUntil runs the event loop until every thread has either finished
// or retired at least target instructions. With target == ^uint64(0) it
// is the full run loop; the sampled-simulation driver calls it with
// window boundaries to run bounded detailed segments.
func (r *runner) loopUntil(ctx context.Context, target uint64) error {
	done := ctx.Done()
	var tick uint
	for {
		if tick++; done != nil && tick%ctxCheckInterval == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		th := r.pickRunnable(target)
		if th == nil {
			break // all threads finished or past target
		}
		if b := th.BlockedOn(); b != nil {
			f := r.flights[b.Line]
			if f == nil {
				return fmt.Errorf("%w: thread %d blocked on line %d with no flight", ErrDeadlock, th.ID, b.Line)
			}
			if err := r.stepUntilFlightDone(ctx, f); err != nil {
				return err
			}
			th.Resume(f.doneAt)
			continue
		}
		r.stepMCTo(th.Now)
		rec, ok := th.NextRecord()
		if !ok {
			continue
		}
		r.execute(th, rec)
	}
	return nil
}

// drainMC drains remaining memory traffic so power integration and
// thread completion times include the tail. Queued-but-unissued
// prefetches are dropped first: no further demand traffic will arrive
// to satisfy a policy that waits for queue conditions. With only
// in-flight DRAM traffic left, the loop fast-forwards to the next
// completion instead of stepping every MC cycle — the step sequence
// at cycles where work completes is identical, so simulated behavior
// is unchanged.
func (r *runner) drainMC(ctx context.Context) error {
	done := ctx.Done()
	var tick uint
	r.ctrl.FlushLPQ()
	for r.ctrl.Busy() {
		if tick++; done != nil && tick%ctxCheckInterval == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		next := r.mcNow + mem.CPUCyclesPerMCCycle
		if wake := r.ctrl.NextWake(r.mcNow); wake != ^uint64(0) && wake > next {
			if aligned := wake - wake%mem.CPUCyclesPerMCCycle; aligned > r.mcNow {
				next = aligned
			}
		}
		r.mcNow = next
		r.ctrl.Step(r.mcNow)
	}
	return nil
}

// pickRunnable returns the unfinished thread with the smallest clock that
// is not blocked on memory, or nil. Threads at or past target
// instructions are treated as paused and never picked.
//
//asd:hotpath
func (r *runner) pickRunnable(target uint64) *cpu.Thread {
	var best *cpu.Thread
	for _, th := range r.threads {
		if th.Finished() || th.Instructions >= target {
			continue
		}
		if best == nil || th.Now < best.Now {
			best = th
		}
	}
	if best == nil {
		return nil
	}
	// Prefer a non-blocked thread when the min-clock one is blocked.
	if best.BlockedOn() != nil {
		for _, th := range r.threads {
			if !th.Finished() && th.Instructions < target && th.BlockedOn() == nil {
				return th
			}
		}
	}
	return best
}

// stepMCTo processes memory-controller work in the background up to CPU
// cycle target.
//
//asd:hotpath
func (r *runner) stepMCTo(target uint64) {
	for r.mcNow+mem.CPUCyclesPerMCCycle <= target {
		if !r.ctrl.Busy() {
			// Jump across idle time, staying MC-cycle aligned.
			r.mcNow = target - target%mem.CPUCyclesPerMCCycle
			return
		}
		wake := r.ctrl.NextWake(r.mcNow)
		next := r.mcNow + mem.CPUCyclesPerMCCycle
		if wake > next && wake != ^uint64(0) {
			aligned := wake - wake%mem.CPUCyclesPerMCCycle
			if aligned > next && aligned <= target {
				next = aligned
			} else if aligned > target {
				next = target - target%mem.CPUCyclesPerMCCycle
				if next <= r.mcNow {
					return
				}
			}
		}
		r.mcNow = next
		r.ctrl.Step(r.mcNow)
	}
}

// stepUntilFlightDone advances the MC until flight f completes.
func (r *runner) stepUntilFlightDone(ctx context.Context, f *flight) error {
	done := ctx.Done()
	var tick uint
	for !f.done {
		if tick++; done != nil && tick%ctxCheckInterval == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if !r.ctrl.Busy() {
			return fmt.Errorf("%w: waiting for line %d with idle memory controller", ErrDeadlock, f.line)
		}
		wake := r.ctrl.NextWake(r.mcNow)
		next := r.mcNow + mem.CPUCyclesPerMCCycle
		if wake != ^uint64(0) && wake > next {
			next = wake - wake%mem.CPUCyclesPerMCCycle
			if next <= r.mcNow {
				next = r.mcNow + mem.CPUCyclesPerMCCycle
			}
		}
		r.mcNow = next
		r.ctrl.Step(r.mcNow)
	}
	return nil
}

// execute resolves one trace record for thread th.
//
//asd:hotpath
func (r *runner) execute(th *cpu.Thread, rec trace.Record) {
	line := mem.LineOf(rec.Addr)
	store := rec.Op == trace.Store
	res := r.hier.Access(line, store, th.Now)
	r.enqueueWritebacks(res.Writebacks, th)

	// The PS unit watches the demand reference stream at line granularity
	// (hits on previously prefetched lines must keep a stream alive, or
	// the unit would lose every stream it successfully covers).
	psObserve := r.ps != nil && line != r.lastLine[th.ID]
	if r.ps != nil {
		r.lastLine[th.ID] = line
	}

	if res.Level != cache.Memory {
		if !store && res.Level != cache.LevelL1 {
			th.ChargeHit(res.Latency / r.cfg.HitOverlap)
		}
		if psObserve {
			r.psMiss(th, line)
		}
		return
	}

	// Full miss: goes to the memory controller. The demand Read is filed
	// before any prefetches it triggers, so prefetch traffic never queues
	// ahead of the miss the CPU is about to block on.
	if f, ok := r.flights[line]; ok {
		// Line already inbound (demand from the other thread, or a PS
		// prefetch): merge.
		pendID := th.AddPending(line, !store)
		f.waiters = append(f.waiters, waiter{th: th, pendID: pendID})
		f.needL1 = true
		f.dirty = f.dirty || store
	} else {
		pendID := th.AddPending(line, !store)
		f := r.getFlight()
		f.line, f.kind, f.dirty, f.needL1 = line, flightDemand, store, true
		f.waiters = append(f.waiters, waiter{th: th, pendID: pendID})
		r.flights[line] = f //asd:allow hotpath-noalloc flight table bounded by outstanding misses; buckets reused in steady state
		r.enqueueRead(line, th.ID, th.Now)
	}
	if psObserve {
		r.psMiss(th, line)
	}
}

// psMiss feeds the processor-side prefetcher with an L1 miss and launches
// any prefetches it requests.
//
//asd:hotpath
func (r *runner) psMiss(th *cpu.Thread, line mem.Line) {
	for _, req := range r.ps.ObserveMiss(line, th.Now) {
		if r.hier.Contains(req.Line) {
			continue // already on chip
		}
		if _, ok := r.flights[req.Line]; ok {
			continue // already inbound
		}
		if r.psBusy >= maxPSOutstanding {
			continue
		}
		kind := flightPSL2
		if req.IntoL1 {
			kind = flightPSL1
		}
		f := r.getFlight()
		f.line, f.kind, f.needL1 = req.Line, kind, req.IntoL1
		r.flights[req.Line] = f //asd:allow hotpath-noalloc flight table bounded by outstanding misses; buckets reused in steady state
		r.psBusy++
		r.enqueueRead(req.Line, th.ID, th.Now)
	}
}

// enqueueRead files a Read with the memory controller.
//
//asd:hotpath
func (r *runner) enqueueRead(line mem.Line, thread int, now uint64) {
	r.cmdID++
	r.ctrl.Enqueue(mem.Command{Kind: mem.Read, Line: line, Thread: thread, Arrival: now, ID: r.cmdID})
}

// enqueueWritebacks files cast-out Writes.
//
//asd:hotpath
func (r *runner) enqueueWritebacks(lines []mem.Line, th *cpu.Thread) {
	for _, l := range lines {
		r.cmdID++
		r.ctrl.Enqueue(mem.Command{Kind: mem.Write, Line: l, Thread: th.ID, Arrival: th.Now, ID: r.cmdID})
	}
}

// onReadDone is the MC completion callback: it fills the caches, releases
// waiting threads, and retires the flight.
//
//asd:hotpath
func (r *runner) onReadDone(cmd mem.Command, at uint64) {
	f, ok := r.flights[cmd.Line]
	if !ok {
		return
	}
	delete(r.flights, cmd.Line)
	f.done = true
	f.doneAt = at

	var wbs []mem.Line
	if f.kind == flightPSL2 && !f.needL1 {
		wbs = r.hier.FillL2Only(f.line)
	} else {
		wbs = r.hier.Fill(f.line, f.dirty)
	}
	if f.kind != flightDemand {
		r.psBusy--
	}
	for _, w := range f.waiters {
		w.th.Complete(w.pendID)
		if w.th.Finished() {
			w.th.DrainTo(at)
		}
	}
	// Writebacks caused by the fill enter the MC now.
	for _, l := range wbs {
		r.cmdID++
		r.ctrl.Enqueue(mem.Command{Kind: mem.Write, Line: l, Thread: cmd.Thread, Arrival: at, ID: r.cmdID})
	}
	r.putFlight(f)
}

// collect assembles the Result.
func (r *runner) collect(bench string) Result {
	res := Result{Benchmark: bench, Mode: r.cfg.Mode}
	for _, th := range r.threads {
		if th.Now > res.Cycles {
			res.Cycles = th.Now
		}
		res.Instructions += th.Instructions
		res.StallCycles += th.StallCycles
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	res.MC = r.ctrl.Stats()
	res.DRAM = r.dram.Stats()
	res.L1HitRate = r.hier.L1.HitRate()
	res.L2HitRate = r.hier.L2.HitRate()
	res.L3HitRate = r.hier.L3.HitRate()
	res.Coverage = r.ctrl.Coverage()
	res.UsefulPrefetchFrac = r.ctrl.UsefulPrefetchFrac()
	res.DelayedRegularFrac = r.ctrl.DelayedRegularFrac()
	if r.ps != nil {
		res.PSIssued = r.ps.Issued
	}
	res.TrueLengths = stats.NewHistogram(16)
	if r.trueLens != nil {
		for _, h := range r.trueLens {
			merge(res.TrueLengths, h)
		}
	} else {
		for _, g := range r.gens {
			merge(res.TrueLengths, g.TrueLengths)
		}
	}
	if len(r.engines) > 0 {
		if eng, ok := r.engines[0].(*core.Engine); ok {
			res.ApproxLengths = eng.ApproxLengths.Clone()
			res.LastEpochSLH = eng.LastEpochSLH()
			res.EpochSLHs = eng.EpochHistory()
		}
	}
	if a := r.ctrl.Adaptive(); a != nil {
		res.PolicyEpochs = a.PolicyEpochs
	}
	return res
}

// merge adds src's buckets into dst.
func merge(dst, src *stats.Histogram) {
	for i := 1; i <= src.Buckets(); i++ {
		if c := src.Count(i); c > 0 {
			dst.ObserveN(i, c)
		}
	}
}

// newRunnerForTest builds (but does not run) a runner; tests use it to
// inspect internal component state after a run.
func newRunnerForTest(bench string, cfg Config) (*runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildRunner(bench, cfg)
}
