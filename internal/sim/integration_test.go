package sim

import (
	"testing"

	"asdsim/internal/mc"
	"asdsim/internal/trace"
	"asdsim/internal/workload"
)

// Conservation: every demand read the MC accepted was either served from
// DRAM, satisfied by the Prefetch Buffer, or merged onto a prefetch —
// nothing is lost or double-served.
func TestReadConservation(t *testing.T) {
	for _, mode := range []Mode{NP, PS, MS, PMS} {
		res, err := Run("GemsFDTD", Default(mode, 400_000))
		if err != nil {
			t.Fatal(err)
		}
		served := res.MC.DRAMReads + res.MC.PBHitsEntry + res.MC.PBHitsLate + res.MC.PFMergeHits
		if served != res.MC.RegularReads {
			t.Errorf("%v: reads=%d served=%d (dram=%d pbE=%d pbL=%d merge=%d)",
				mode, res.MC.RegularReads, served,
				res.MC.DRAMReads, res.MC.PBHitsEntry, res.MC.PBHitsLate, res.MC.PFMergeHits)
		}
	}
}

// DRAM traffic accounting: DRAM reads equal MC-issued demand reads plus
// prefetches; writes match MC writes.
func TestDRAMTrafficAccounting(t *testing.T) {
	res, err := Run("milc", Default(PMS, 400_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DRAM.Reads; got != res.MC.DRAMReads+res.MC.PrefetchesToDRAM {
		t.Errorf("DRAM reads %d != demand %d + prefetch %d",
			got, res.MC.DRAMReads, res.MC.PrefetchesToDRAM)
	}
	if res.DRAM.Writes != res.MC.DRAMWrites {
		t.Errorf("DRAM writes %d != MC writes %d", res.DRAM.Writes, res.MC.DRAMWrites)
	}
}

// The NP and MS configurations execute the identical instruction stream,
// so their MC demand-read counts must match exactly (the prefetcher may
// only change *when* reads are served, never how many there are).
func TestDemandTrafficInvariantAcrossMS(t *testing.T) {
	np, err := Run("tonto", Default(NP, 400_000))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run("tonto", Default(MS, 400_000))
	if err != nil {
		t.Fatal(err)
	}
	if np.MC.RegularReads != ms.MC.RegularReads {
		t.Errorf("demand reads differ: NP=%d MS=%d", np.MC.RegularReads, ms.MC.RegularReads)
	}
	if np.Instructions != ms.Instructions {
		t.Errorf("instructions differ: NP=%d MS=%d", np.Instructions, ms.Instructions)
	}
}

// Replaying a generator-written trace must reproduce the generator-driven
// run exactly: same cycles, same MC statistics.
func TestRunTraceMatchesRun(t *testing.T) {
	cfg := Default(PMS, 200_000)
	direct, err := Run("wrf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := workload.ByName("wrf")
	g := workload.MustGenerator(prof, cfg.Seed, 0)
	// Capture enough records to cover the instruction budget.
	recs := trace.Collect(trace.Limit(g, 100_000), 0)
	replay, err := RunTrace("wrf-replay", []trace.Source{trace.NewSliceSource(recs)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cycles != replay.Cycles {
		t.Errorf("cycles differ: direct=%d replay=%d", direct.Cycles, replay.Cycles)
	}
	if direct.MC != replay.MC {
		t.Errorf("MC stats differ:\ndirect %+v\nreplay %+v", direct.MC, replay.MC)
	}
}

func TestRunTraceSourceCountMismatch(t *testing.T) {
	cfg := Default(NP, 1000)
	if _, err := RunTrace("x", nil, cfg); err == nil {
		t.Error("expected error for missing sources")
	}
	cfg.Threads = 2
	if _, err := RunTrace("x", []trace.Source{trace.NewSliceSource(nil)}, cfg); err == nil {
		t.Error("expected error for 1 source with 2 threads")
	}
}

// A trace that runs out before the budget must still terminate cleanly.
func TestRunTraceShortTrace(t *testing.T) {
	cfg := Default(MS, 1_000_000)
	recs := trace.Collect(trace.Limit(workload.MustGenerator(mustProf(t, "lbm"), 1, 0), 500), 0)
	res, err := RunTrace("short", []trace.Source{trace.NewSliceSource(recs)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Errorf("short trace produced no progress: %+v", res)
	}
}

func mustProf(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Schedulers change ordering, never correctness: all commands complete
// under each scheduler and demand traffic is identical. MS mode is used
// because processor-side prefetch traffic legitimately varies with
// timing, while demand misses are a pure function of the access stream.
func TestSchedulersPreserveWork(t *testing.T) {
	type key struct{ reads, writes uint64 }
	seen := map[key]bool{}
	for _, sched := range []mc.SchedulerKind{mc.SchedInOrder, mc.SchedMemoryless, mc.SchedAHB} {
		cfg := Default(MS, 300_000)
		cfg.MC.Scheduler = sched
		res, err := Run("cactusADM", cfg)
		if err != nil {
			t.Fatal(err)
		}
		served := res.MC.DRAMReads + res.MC.PBHitsEntry + res.MC.PBHitsLate + res.MC.PFMergeHits
		if served != res.MC.RegularReads {
			t.Errorf("scheduler %d: conservation broken", sched)
		}
		seen[key{res.MC.RegularReads, res.MC.RegularWrites}] = true
	}
	if len(seen) != 1 {
		t.Errorf("demand traffic varies across schedulers: %v", seen)
	}
}

// Epoch histories must partition the stream observations: the per-epoch
// SLH totals sum to at most the reads-weighted stream mass.
func TestEpochHistoryConsistency(t *testing.T) {
	cfg := Default(MS, 1_200_000)
	cfg.ASD.KeepHistory = true
	res, err := Run("GemsFDTD", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochSLHs) < 3 {
		t.Fatalf("too few epochs: %d", len(res.EpochSLHs))
	}
	for i, h := range res.EpochSLHs {
		if h.Total() == 0 {
			t.Errorf("epoch %d empty", i)
		}
	}
}

// SMT threads share the memory system but keep private detection state:
// a 2-thread run completes both budgets and covers reads for both.
func TestSMTBothThreadsProgress(t *testing.T) {
	cfg := Default(PMS, 150_000)
	cfg.Threads = 2
	res, err := Run("milc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 2*150_000 {
		t.Errorf("instructions = %d, want >= %d", res.Instructions, 2*150_000)
	}
	if res.Coverage <= 0 {
		t.Error("no coverage under SMT PMS")
	}
}
