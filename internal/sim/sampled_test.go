package sim

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"
)

// sampledJSON flattens a SampledResult to its serialized form;
// WallSeconds is json:"-" so host timing never enters the comparison.
func sampledJSON(t *testing.T, s SampledResult) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Sampled runs are deterministic: repeating one yields a bit-identical
// estimate (every serialized field, including the CI bounds).
func TestSampledDeterministic(t *testing.T) {
	cfg := Default(PMS, 500_000)
	sc := DefaultSampleConfig()
	a, err := Sampled("milc", cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sampled("milc", cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := sampledJSON(t, a), sampledJSON(t, b); ja != jb {
		t.Fatalf("sampled runs diverge:\n%s\n%s", ja, jb)
	}
}

// The batched sampled path must match the live-generator path bit for
// bit — with full functional warming and with the reuse-bounded
// FuncWarmup schedule, whose bulk record skip is a pure optimization of
// the per-record consume-and-ignore loop.
func TestSampledBatchMatchesLive(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   SampleConfig
	}{
		{"full-warming", DefaultSampleConfig()},
		{"reuse-bounded", SampleConfig{Period: 150_000, Warmup: 4_000, Detail: 8_000, FuncWarmup: 100_000, Confidence: 0.95}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default(MS, 700_000)
			live, err := SampledContext(context.Background(), "GemsFDTD", cfg, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := NewBatch().RunSampled(context.Background(), "GemsFDTD", cfg, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			if jl, jb := sampledJSON(t, live), sampledJSON(t, batched); jl != jb {
				t.Fatalf("live and batched sampled runs diverge:\n%s\n%s", jl, jb)
			}
		})
	}
}

// On the golden cells the default schedule's confidence interval must
// contain the full detailed run's CPI — the headline accuracy claim CI
// smoke-checks. Both cells were verified covered across all four modes
// in the 120-cell validation sweep (EXPERIMENTS.md).
func TestSampledCICoversFullRunCPI(t *testing.T) {
	for _, tc := range []struct {
		bench string
		mode  Mode
	}{
		{"GemsFDTD", PMS},
		{"milc", PMS},
	} {
		cfg := Default(tc.mode, 2_000_000)
		full, err := Run(tc.bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fullCPI := float64(full.Cycles) / float64(full.Instructions)
		sres, err := Sampled(tc.bench, cfg, DefaultSampleConfig())
		if err != nil {
			t.Fatal(err)
		}
		if sres.CILo > fullCPI || fullCPI > sres.CIHi {
			t.Errorf("%s/%v: full CPI %.4f outside sampled %d%% CI [%.4f, %.4f] (mean %.4f over %d windows)",
				tc.bench, tc.mode, fullCPI, int(sres.Confidence*100), sres.CILo, sres.CIHi, sres.CPIMean, sres.Windows)
		}
		if sres.Windows < 2 || sres.MeasuredInstructions == 0 {
			t.Errorf("%s/%v: degenerate sampling: %+v", tc.bench, tc.mode, sres)
		}
		if math.Abs(float64(sres.EstCycles)-sres.CPIMean*float64(sres.Instructions)) > 1 {
			t.Errorf("%s/%v: EstCycles inconsistent with CPIMean", tc.bench, tc.mode)
		}
	}
}

func TestSampledValidation(t *testing.T) {
	cfg := Default(PMS, 2_000_000)
	for name, sc := range map[string]SampleConfig{
		"bad-confidence":     {Confidence: 0.80},
		"window-over-period": {Period: 10_000, Warmup: 8_000, Detail: 4_000, Confidence: 0.95},
	} {
		if _, err := Sampled("milc", cfg, sc); err == nil {
			t.Errorf("%s: accepted invalid sample config %+v", name, sc)
		}
	}
	// A budget too small for two measurement windows cannot produce a
	// confidence interval.
	if _, err := Sampled("milc", Default(PMS, 110_000), DefaultSampleConfig()); err == nil {
		t.Error("accepted a budget yielding < 2 measurement windows")
	}
	// An invalid base config is rejected before any simulation.
	bad := cfg
	bad.Engine = EngineKind(99)
	if _, err := Sampled("milc", bad, DefaultSampleConfig()); err == nil {
		t.Error("accepted invalid base config")
	}
}

// Cancellation reaches the sampled loop: a pre-cancelled context aborts
// before completing, and a short deadline interrupts a long run.
func TestSampledContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SampledContext(ctx, "GemsFDTD", Default(PMS, 50_000_000), DefaultSampleConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := NewBatch().RunSampled(ctx, "GemsFDTD", Default(PMS, 50_000_000), DefaultSampleConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("batched: got %v, want context.Canceled", err)
	}
}

func TestSampledContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SampledContext(ctx, "GemsFDTD", Default(PMS, 1_000_000_000), DefaultSampleConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the sampled loop is not observing ctx", elapsed)
	}
}

// Batch.RunContext honours cancellation too (the exact path's context
// plumbing is shared with sim.RunContext, but the batched runner builds
// differently — cover it directly).
func TestBatchRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewBatch().RunContext(ctx, "GemsFDTD", Default(PMS, 50_000_000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
