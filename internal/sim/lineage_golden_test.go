package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asdsim/internal/obs/prov"
)

// TestGoldenLineage pins one GemsFDTD prefetch's full provenance tree
// byte-for-byte: the epoch snapshot, stream-filter lifetime, inequality
// decision and MC lifecycle for the run's last PB hit. Regenerate with
// -update-golden only when a simulated-behavior change is intended —
// the tree embeds cycles, LHT contents and depths, so it doubles as a
// determinism witness for the provenance layer itself.
func TestGoldenLineage(t *testing.T) {
	// goldenBudget ends before MS's first post-epoch nomination; 400k
	// instructions yield a full chain through a PB hit.
	cfg := Default(MS, 400_000)
	rec := prov.New(prov.Options{TraceID: "golden/GemsFDTD/MS"})
	cfg.Prov = rec
	if _, err := Run("GemsFDTD", cfg); err != nil {
		t.Fatal(err)
	}
	st := rec.Stream()
	line, cycle, ok := prov.LastExplainable(st)
	if !ok {
		t.Fatalf("no explainable prefetch in %d records", len(st.Records))
	}
	lin, err := prov.Explain(st, line, cycle)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	lin.WriteTree(&b)
	got := []byte(b.String())

	path := filepath.Join("testdata", "golden", "GemsFDTD_MS_lineage.txt")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("lineage drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
