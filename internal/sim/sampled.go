package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"asdsim/internal/cache"
	"asdsim/internal/cpu"
	"asdsim/internal/mem"
	"asdsim/internal/trace"
)

// Default sampling parameters: 10k measured instructions out of every
// 100k, preceded by a 5k detailed warmup — a 15% detailed-simulation
// duty cycle with the SMARTS-style systematic schedule.
const (
	DefaultSamplePeriod     = 100_000
	DefaultSampleWarmup     = 5_000
	DefaultSampleDetail     = 10_000
	DefaultSampleConfidence = 0.95
)

// SampleConfig parameterizes SMARTS-style sampled simulation: every
// Period instructions (per thread), the simulator runs Warmup detailed
// instructions to re-warm timing state, measures CPI over the next
// Detail detailed instructions, then fast-forwards the rest of the
// period with a functional model (caches, the processor-side
// prefetcher, and the memory-side engines' stream/SLH state stay warm;
// MC and DRAM timing are skipped).
type SampleConfig struct {
	// Period is the sampling period in instructions (default 100k).
	Period uint64
	// Warmup is the detailed-but-unmeasured prefix of each window
	// (default 5k).
	Warmup uint64
	// Detail is the measured detailed portion of each window
	// (default 10k).
	Detail uint64
	// FuncWarmup bounds functional warming: when non-zero, only the
	// last FuncWarmup instructions before each detailed window are
	// functionally modeled (caches, prefetcher state); earlier
	// fast-forward references are consumed without modeling, in the
	// style of reuse-bounded warming (MRRL/BLRL). Zero warms the whole
	// fast-forward gap. Bounded warming is faster but slightly less
	// accurate for references whose cache reuse distance exceeds the
	// bound.
	FuncWarmup uint64
	// Confidence selects the two-sided confidence level for the CPI
	// interval: 0.90, 0.95 (default) or 0.99.
	Confidence float64
}

// DefaultSampleConfig returns the default sampling parameters.
func DefaultSampleConfig() SampleConfig {
	return SampleConfig{
		Period:     DefaultSamplePeriod,
		Warmup:     DefaultSampleWarmup,
		Detail:     DefaultSampleDetail,
		Confidence: DefaultSampleConfidence,
	}
}

// WithDefaults fills zero fields (except FuncWarmup, whose zero means
// full functional warming) from the defaults.
func (sc SampleConfig) WithDefaults() SampleConfig {
	if sc.Period == 0 {
		sc.Period = DefaultSamplePeriod
	}
	if sc.Warmup == 0 {
		sc.Warmup = DefaultSampleWarmup
	}
	if sc.Detail == 0 {
		sc.Detail = DefaultSampleDetail
	}
	if sc.Confidence == 0 {
		sc.Confidence = DefaultSampleConfidence
	}
	return sc
}

// Validate rejects inconsistent sampling parameters (call on the
// defaulted config; Sampled does this internally).
func (sc SampleConfig) Validate() error {
	if sc.Detail == 0 {
		return fmt.Errorf("sim: sample detail window must be > 0")
	}
	if sc.Warmup+sc.Detail > sc.Period {
		return fmt.Errorf("sim: sample warmup+detail (%d) exceeds period (%d)", sc.Warmup+sc.Detail, sc.Period)
	}
	switch sc.Confidence {
	case 0.90, 0.95, 0.99:
	default:
		return fmt.Errorf("sim: unsupported confidence level %v (use 0.90, 0.95 or 0.99)", sc.Confidence)
	}
	return nil
}

// SampledResult is the outcome of one sampled simulation: a CPI point
// estimate with a Student-t confidence interval over the measurement
// windows, and cycle/IPC estimates extrapolated from it.
type SampledResult struct {
	Benchmark string
	Mode      Mode

	// Windows is the number of measurement windows that contributed
	// CPI samples; MeasuredInstructions is their total retired
	// instruction count, Instructions the whole run's (detailed +
	// fast-forwarded).
	Windows              int
	MeasuredInstructions uint64
	Instructions         uint64

	// CPIMean is the mean per-window CPI, CPIStdDev the sample
	// standard deviation across windows, and CPIHalfWidth the
	// half-width of the two-sided confidence interval [CILo, CIHi]
	// at the configured Confidence level.
	CPIMean      float64
	CPIStdDev    float64
	CPIHalfWidth float64
	CILo         float64
	CIHi         float64
	Confidence   float64

	// EstCycles and EstIPC extrapolate the CPI estimate over the whole
	// instruction budget.
	EstCycles uint64
	EstIPC    float64

	// Sample echoes the (defaulted) sampling parameters used.
	Sample SampleConfig

	// WallSeconds is the host wall-clock duration; excluded from JSON
	// for the same reason as Result.WallSeconds.
	WallSeconds float64 `json:"-"`
}

// AsResult shapes the sampled estimate as a Result so downstream
// consumers built for exact runs (gain tables, outcome stores) can
// treat sampled cells uniformly. Only Benchmark, Mode, Cycles,
// Instructions and IPC are populated — detailed MC/DRAM statistics do
// not exist in sampled mode.
func (s *SampledResult) AsResult() Result {
	return Result{
		Benchmark:    s.Benchmark,
		Mode:         s.Mode,
		Cycles:       s.EstCycles,
		Instructions: s.Instructions,
		IPC:          s.EstIPC,
		WallSeconds:  s.WallSeconds,
	}
}

// Sampled runs benchmark bench under cfg with SMARTS-style systematic
// sampling and returns a CPI estimate with confidence interval.
func Sampled(bench string, cfg Config, sc SampleConfig) (SampledResult, error) {
	return SampledContext(context.Background(), bench, cfg, sc)
}

// SampledContext is Sampled with cancellation.
func SampledContext(ctx context.Context, bench string, cfg Config, sc SampleConfig) (SampledResult, error) {
	if err := cfg.Validate(); err != nil {
		return SampledResult{}, err
	}
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return SampledResult{}, err
	}
	start := time.Now() //asd:allow determinism wall-clock throughput stamp; excluded from serialized results
	r, err := buildRunner(bench, cfg)
	if err != nil {
		return SampledResult{}, err
	}
	return runSampled(ctx, r, bench, sc, start)
}

// RunSampled is the shared-trace sampled path: like SampledContext but
// replaying the batch's materialized trace for bench instead of driving
// live generators, so a sweep's sampled cells also amortize trace
// generation.
func (b *Batch) RunSampled(ctx context.Context, bench string, cfg Config, sc SampleConfig) (SampledResult, error) {
	if err := cfg.Validate(); err != nil {
		return SampledResult{}, err
	}
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return SampledResult{}, err
	}
	start := time.Now() //asd:allow determinism wall-clock throughput stamp; excluded from serialized results
	r, err := b.buildRunner(bench, cfg)
	if err != nil {
		return SampledResult{}, err
	}
	return runSampled(ctx, r, bench, sc, start)
}

// runSampled drives the alternating detailed/functional schedule and
// assembles the estimate.
func runSampled(ctx context.Context, r *runner, bench string, sc SampleConfig, start time.Time) (SampledResult, error) {
	budget := r.cfg.InstrBudget
	r.initFF()
	done := ctx.Done()
	var cpis []float64
	var measured uint64
	for ws := uint64(0); ws < budget; ws += sc.Period {
		// The bounded detailed segments below are usually too short for
		// loopUntil's own stride-1024 context check to fire, so poll once
		// per period here (a period is milliseconds of host time).
		if done != nil {
			select {
			case <-done:
				return SampledResult{}, fmt.Errorf("sim: sampled run aborted: %w", ctx.Err())
			default:
			}
		}
		if ws+sc.Warmup+sc.Detail <= budget {
			if err := r.loopUntil(ctx, ws+sc.Warmup); err != nil {
				return SampledResult{}, err
			}
			c0, i0 := r.progress()
			if err := r.loopUntil(ctx, ws+sc.Warmup+sc.Detail); err != nil {
				return SampledResult{}, err
			}
			c1, i1 := r.progress()
			if i1 > i0 && c1 > c0 {
				cpis = append(cpis, float64(c1-c0)/float64(i1-i0))
				measured += i1 - i0
			}
			if err := r.flushForSample(ctx); err != nil {
				return SampledResult{}, err
			}
		}
		end := ws + sc.Period
		if end > budget {
			end = budget
		}
		var warmFrom uint64
		if sc.FuncWarmup != 0 && end > sc.FuncWarmup {
			warmFrom = end - sc.FuncWarmup
		}
		r.fastForward(end, warmFrom)
	}
	if len(cpis) < 2 {
		return SampledResult{}, fmt.Errorf(
			"sim: budget %d yields %d measurement windows at period %d; need >= 2 for a confidence interval (shrink the period or raise the budget)",
			budget, len(cpis), sc.Period)
	}

	mean, sd := meanStdDev(cpis)
	half := tCritical(sc.Confidence, len(cpis)-1) * sd / math.Sqrt(float64(len(cpis)))
	var instr uint64
	for _, th := range r.threads {
		instr += th.Instructions
	}
	res := SampledResult{
		Benchmark:            bench,
		Mode:                 r.cfg.Mode,
		Windows:              len(cpis),
		MeasuredInstructions: measured,
		Instructions:         instr,
		CPIMean:              mean,
		CPIStdDev:            sd,
		CPIHalfWidth:         half,
		CILo:                 mean - half,
		CIHi:                 mean + half,
		Confidence:           sc.Confidence,
		EstCycles:            uint64(mean * float64(instr)),
		EstIPC:               1 / mean,
		Sample:               sc,
	}
	res.WallSeconds = time.Since(start).Seconds() //asd:allow determinism wall-clock throughput stamp; excluded from serialized results
	return res, nil
}

// progress snapshots the aggregate clock (max thread cycle) and total
// retired instructions; window CPI is the ratio of their deltas.
func (r *runner) progress() (cycles, instr uint64) {
	for _, th := range r.threads {
		if th.Now > cycles {
			cycles = th.Now
		}
		instr += th.Instructions
	}
	return cycles, instr
}

// flushForSample ends a detailed segment: blocked threads are resumed
// through the same flight-completion path the main loop uses (so their
// stall time is accounted), then the MC drains to idle so the next
// detailed window starts from a quiescent memory system.
func (r *runner) flushForSample(ctx context.Context) error {
	for {
		blocked := false
		for _, th := range r.threads {
			b := th.BlockedOn()
			if b == nil {
				continue
			}
			blocked = true
			f := r.flights[b.Line]
			if f == nil {
				return fmt.Errorf("%w: thread %d blocked on line %d with no flight", ErrDeadlock, th.ID, b.Line)
			}
			if err := r.stepUntilFlightDone(ctx, f); err != nil {
				return err
			}
			th.Resume(f.doneAt)
		}
		if !blocked {
			break
		}
	}
	return r.drainMC(ctx)
}

// Fast-forward recent-line filter geometry: a 512-slot direct-mapped
// table per thread, with a 64-access recency window. The L1 holds 256
// lines in 64 4-way sets, so a line loaded within the last 64
// functional accesses is still L1-resident in all but pathological
// conflict patterns, and its walk can be skipped.
const (
	ffFilterSlots  = 512
	ffRecentWindow = 64
)

// initFF allocates the per-thread fast-forward filter tables (sampled
// runs only; the exact path never pays for them).
func (r *runner) initFF() {
	if r.ffSeen != nil {
		return
	}
	r.ffSeen = make([][]mem.Line, len(r.threads))
	r.ffSeenAt = make([][]uint32, len(r.threads))
	r.ffTick = make([]uint32, len(r.threads))
	for i := range r.threads {
		r.ffSeen[i] = make([]mem.Line, ffFilterSlots)
		r.ffSeenAt[i] = make([]uint32, ffFilterSlots)
		// Start ticks past the window so zero-initialized slots never
		// false-match line 0.
		r.ffTick[i] = ffRecentWindow + 1
	}
}

// bumpFFWindow invalidates the filters by sliding every thread's tick
// past the recency window — cheaper than clearing the tables between
// detailed segments.
func (r *runner) bumpFFWindow() {
	for i := range r.ffTick {
		r.ffTick[i] += ffRecentWindow + 1
	}
}

// fastForward functionally executes every thread to the target
// instruction count: cache contents, the PS prefetcher's stream state
// and the memory-side engines' stream-filter/SLH state stay warm, but
// no MC/DRAM timing is modeled — misses fill instantly and the thread
// clock advances by compute gaps alone. Loads to recently-touched
// lines skip the cache walk entirely (see ffRecentWindow) but still
// feed the PS prefetcher, whose streams are kept alive by hits on
// covered lines. Must be called with the MC idle (flushForSample) so
// no flights are outstanding.
//
// warmFrom implements reuse-bounded warming: records retiring before
// the warmFrom instruction count are consumed without any modeling at
// all (the thread clock still advances), and only the tail of the gap
// — the part whose state the next detailed window can actually observe
// — is functionally warmed. Pass 0 to warm the whole gap.
//
// Like loopUntil, this driver stays outside the //asd:hotpath closure
// (record fetch dispatches through the trace.Source interface); the
// per-record leaves it calls — functionalAccess, psWarm — are the
// certified hot path.
func (r *runner) fastForward(target, warmFrom uint64) {
	r.bumpFFWindow()
	for ti, th := range r.threads {
		if warmFrom > th.Instructions && r.ffRecs != nil {
			// Batched runner: skip the unmodeled run of records in bulk.
			// A record is skipped iff its retirement stays below
			// warmFrom — exactly the records the per-record loop below
			// would consume and ignore.
			recs, src := r.ffRecs[ti], r.ffSrcs[ti]
			pos, instr := src.Pos(), th.Instructions
			for pos < len(recs) {
				next := instr + uint64(recs[pos].Gap) + 1
				if next >= warmFrom {
					break
				}
				instr = next
				pos++
			}
			src.Skip(pos - src.Pos())
			th.SkipRetired(instr - th.Instructions)
		}
		seen, seenAt := r.ffSeen[ti], r.ffSeenAt[ti]
		tick := r.ffTick[ti]
		for th.Instructions < target {
			rec, ok := th.NextRecord()
			if !ok {
				break
			}
			if th.Instructions < warmFrom {
				continue
			}
			tick++
			line := mem.LineOf(rec.Addr)
			slot := uint64(line) & (ffFilterSlots - 1)
			if rec.Op == trace.Load && seen[slot] == line && tick-seenAt[slot] <= ffRecentWindow {
				seenAt[slot] = tick
				if r.ps != nil && line != r.lastLine[th.ID] {
					r.lastLine[th.ID] = line
					r.psWarm(th, line)
				}
				continue
			}
			seen[slot], seenAt[slot] = line, tick
			r.functionalAccess(th, line, rec.Op == trace.Store)
		}
		r.ffTick[ti] = tick
	}
}

// functionalAccess is the cheap model for one trace record: a cache
// access with instant fill on miss, plus prefetcher training.
//
//asd:hotpath
func (r *runner) functionalAccess(th *cpu.Thread, line mem.Line, store bool) {
	res := r.hier.Access(line, store, th.Now)
	psObserve := r.ps != nil && line != r.lastLine[th.ID]
	if r.ps != nil {
		r.lastLine[th.ID] = line
	}
	if res.Level == cache.Memory {
		r.hier.Fill(line, store)
		// In detailed mode every Read entering the MC trains the
		// memory-side engine; the functional equivalent is each demand
		// miss.
		if len(r.engines) > 0 {
			r.engines[th.ID%len(r.engines)].ObserveRead(line, th.Now)
		}
	}
	if psObserve {
		r.psWarm(th, line)
	}
}

// psWarm feeds the processor-side prefetcher an L1 miss and applies its
// requested prefetches as instant fills, keeping its stream state and
// the cache contents consistent with what detailed mode would produce.
//
//asd:hotpath
func (r *runner) psWarm(th *cpu.Thread, line mem.Line) {
	for _, req := range r.ps.ObserveMiss(line, th.Now) {
		if r.hier.Contains(req.Line) {
			continue
		}
		if req.IntoL1 {
			r.hier.Fill(req.Line, false)
		} else {
			r.hier.FillL2Only(req.Line)
		}
		// PS prefetch reads reach the MC in detailed mode and train
		// the memory-side engine there; mirror that.
		if len(r.engines) > 0 {
			r.engines[th.ID%len(r.engines)].ObserveRead(req.Line, th.Now)
		}
	}
}

// meanStdDev returns the mean and sample standard deviation.
func meanStdDev(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// Two-sided Student-t critical values for df 1..30; beyond 30 the
// normal quantile is close enough for CI purposes.
var (
	tCrit90 = [30]float64{6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697}
	tCrit95 = [30]float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042}
	tCrit99 = [30]float64{63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750}
)

// tCritical returns the two-sided critical value for the given
// confidence level and degrees of freedom.
func tCritical(confidence float64, df int) float64 {
	if df < 1 {
		df = 1
	}
	if df > 30 {
		switch confidence {
		case 0.90:
			return 1.645
		case 0.99:
			return 2.576
		default:
			return 1.960
		}
	}
	switch confidence {
	case 0.90:
		return tCrit90[df-1]
	case 0.99:
		return tCrit99[df-1]
	default:
		return tCrit95[df-1]
	}
}
