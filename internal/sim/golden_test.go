package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the committed golden Result files instead of
// comparing against them:
//
//	go test ./internal/sim -run TestGoldenDeterminism -update-golden
//
// Run it only when a simulated-behavior change is intended; kernel-level
// performance refactors must leave every golden byte-identical.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden Result files")

// goldenBudget keeps the matrix fast while still spanning several SLH
// epochs (2000 reads each), so ASD adaptation, the LPQ, the PB, and the
// adaptive scheduler all see real traffic.
const goldenBudget = 60_000

// goldenMatrix is the seed matrix of the determinism contract: two
// benchmarks (one stream-heavy, one mixed) across all four modes and two
// memory-side engines.
func goldenMatrix() []Config {
	var cfgs []Config
	for _, mode := range []Mode{NP, PS, MS, PMS} {
		for _, eng := range []EngineKind{EngineASD, EngineGHB} {
			cfg := Default(mode, goldenBudget)
			cfg.Engine = eng
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

func goldenName(bench string, cfg Config) string {
	return fmt.Sprintf("%s_%s_%s.json", bench, cfg.Mode, cfg.Engine)
}

// TestGoldenDeterminism pins the simulator's observable behavior: the
// canonical Result JSON for a small benchmark × mode × engine matrix is
// committed under testdata/golden and compared byte-for-byte. Any kernel
// refactor that changes a single simulated outcome — a cycle count, a
// queue decision, a histogram bucket — fails here loudly.
func TestGoldenDeterminism(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, bench := range []string{"GemsFDTD", "milc"} {
		for _, cfg := range goldenMatrix() {
			name := goldenName(bench, cfg)
			t.Run(name, func(t *testing.T) {
				res, err := Run(bench, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join(dir, name)
				if *updateGolden {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("Result JSON diverged from golden %s;\nif the behavior change is intended, regenerate with -update-golden", name)
				}
			})
		}
	}
}
