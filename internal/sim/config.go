// Package sim wires the full system model together — synthetic workload
// generators, the cache hierarchy, the processor-side prefetcher, the
// memory controller with its memory-side ASD prefetcher, and DRAM — and
// runs the four configurations the paper compares: NP, PS, MS, and PMS
// (§5.2).
package sim

import (
	"fmt"
	"strings"

	"asdsim/internal/cache"
	"asdsim/internal/core"
	"asdsim/internal/dram"
	"asdsim/internal/mc"
	"asdsim/internal/obs"
	"asdsim/internal/obs/prov"
	"asdsim/internal/prefetch"
)

// Mode selects the prefetching configuration.
type Mode int

// The paper's four configurations.
const (
	// NP: no prefetching anywhere (the stripped-down baseline).
	NP Mode = iota
	// PS: processor-side prefetching only (the stock Power5+).
	PS
	// MS: memory-side prefetching only.
	MS
	// PMS: processor- and memory-side prefetching together.
	PMS
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NP:
		return "NP"
	case PS:
		return "PS"
	case MS:
		return "MS"
	case PMS:
		return "PMS"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// EngineKind selects the memory-side engine (Fig. 11 compares ASD against
// two baselines, all living in the memory controller).
type EngineKind int

// Memory-side engine kinds.
const (
	// EngineASD is Adaptive Stream Detection (the paper's contribution).
	EngineASD EngineKind = iota
	// EngineNextLine prefetches line+1 after every Read.
	EngineNextLine
	// EngineP5Style is a classic n=2 stream prefetcher in the MC.
	EngineP5Style
	// EngineGHB is an address-correlating Global History Buffer
	// prefetcher (extension; the paper's related work [18]).
	EngineGHB
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineASD:
		return "asd"
	case EngineNextLine:
		return "next-line"
	case EngineP5Style:
		return "p5-style"
	case EngineGHB:
		return "ghb"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Config is a full system configuration.
type Config struct {
	// Mode is the prefetching configuration.
	Mode Mode
	// Engine selects the memory-side engine when Mode enables one.
	Engine EngineKind
	// Threads is the SMT width (1 or 2).
	Threads int
	// InstrBudget is the per-thread instruction budget.
	InstrBudget uint64
	// Seed drives all workload randomness.
	Seed uint64

	Cache cache.Config
	DRAM  dram.Config
	MC    mc.Config
	ASD   core.Config
	Sched core.SchedulerConfig
	PS    prefetch.PSConfig
	// Window and MaxOutstanding configure the CPU timing model.
	Window         uint64
	MaxOutstanding int
	// HitOverlap divides charged cache-hit latencies, modelling the
	// out-of-order core's ability to overlap L2/L3 hits with execution.
	HitOverlap uint64

	// Obs, when non-nil, is attached to every instrumented component
	// for the run: the memory controller, DRAM, cache hierarchy, CPU
	// threads, ASD engines and the adaptive scheduler publish probe
	// events into it. Excluded from JSON so serialized configurations
	// (and the farm's content-addressed job keys) are unaffected by
	// observer wiring.
	Obs *obs.Bus `json:"-"`

	// Prov, when non-nil, records per-prefetch provenance for the run:
	// the recorder is wired directly into the memory controller's
	// prefetch-lifecycle sites and each ASD engine's decision/epoch/slot
	// hooks — deliberately not through the probe bus, so a
	// provenance-only run keeps every other probe site disabled.
	// Excluded from JSON for the same reason as Obs.
	Prov *prov.Recorder `json:"-"`
}

// Default returns the paper's evaluated system in the given mode with a
// per-thread instruction budget.
func Default(mode Mode, budget uint64) Config {
	return Config{
		Mode:           mode,
		Engine:         EngineASD,
		Threads:        1,
		InstrBudget:    budget,
		Seed:           1,
		Cache:          cache.DefaultConfig(),
		DRAM:           dram.DefaultConfig(),
		MC:             mc.DefaultConfig(),
		ASD:            core.DefaultConfig(),
		Sched:          core.DefaultSchedulerConfig(),
		PS:             prefetch.DefaultPSConfig(),
		Window:         64,
		MaxOutstanding: 8,
		HitOverlap:     3,
	}
}

// ParseMode parses a configuration name ("NP", "PS", "MS", "PMS",
// case-insensitive) into a Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "NP":
		return NP, nil
	case "PS":
		return PS, nil
	case "MS":
		return MS, nil
	case "PMS":
		return PMS, nil
	default:
		return 0, fmt.Errorf("sim: unknown mode %q (want NP, PS, MS or PMS)", s)
	}
}

// ParseEngine parses a memory-side engine name ("asd", "next-line",
// "p5-style", "ghb") into an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "asd", "":
		return EngineASD, nil
	case "next-line", "nextline":
		return EngineNextLine, nil
	case "p5-style", "p5style", "p5":
		return EngineP5Style, nil
	case "ghb":
		return EngineGHB, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want asd, next-line, p5-style or ghb)", s)
	}
}

// Validate reports the first problem with the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Mode < NP || c.Mode > PMS:
		return fmt.Errorf("sim: invalid mode %d", int(c.Mode))
	case c.Engine < EngineASD || c.Engine > EngineGHB:
		return fmt.Errorf("sim: invalid engine kind %d", int(c.Engine))
	case c.Threads < 1 || c.Threads > 2:
		return fmt.Errorf("sim: Threads must be 1 or 2, got %d", c.Threads)
	case c.InstrBudget == 0:
		return fmt.Errorf("sim: zero instruction budget")
	case c.Window == 0 || c.MaxOutstanding <= 0:
		return fmt.Errorf("sim: invalid CPU window/outstanding")
	case c.HitOverlap == 0:
		return fmt.Errorf("sim: HitOverlap must be positive")
	}
	return nil
}

// msEnabled reports whether the mode includes memory-side prefetching.
func (c *Config) msEnabled() bool { return c.Mode == MS || c.Mode == PMS }

// psEnabled reports whether the mode includes processor-side prefetching.
func (c *Config) psEnabled() bool { return c.Mode == PS || c.Mode == PMS }
