// Benchmarks regenerating each figure of the paper's evaluation at
// reduced scale. Every testing.B below corresponds to one figure (or
// text result) and reports the figure's headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation in miniature. cmd/figures produces the full-scale tables.
package asdsim_test

import (
	"testing"

	"asdsim"
	"asdsim/internal/core"
	"asdsim/internal/mc"
)

// benchBudget keeps each simulation short enough for a bench harness
// while still spanning dozens of SLH epochs.
const benchBudget = 400_000

func runOne(b *testing.B, bench string, mode asdsim.Mode, mutate func(*asdsim.Config)) asdsim.Result {
	b.Helper()
	cfg := asdsim.DefaultConfig(mode, benchBudget)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := asdsim.Run(bench, cfg)
	if err != nil {
		b.Fatalf("%s/%v: %v", bench, mode, err)
	}
	return res
}

// suiteGains measures the three figure-5/6/7 comparisons over a suite.
func suiteGains(b *testing.B, suite asdsim.Suite) (pmsNP, msNP, pmsPS float64) {
	b.Helper()
	names := asdsim.SuiteBenchmarks(suite)
	for _, name := range names {
		np := runOne(b, name, asdsim.NP, nil)
		ps := runOne(b, name, asdsim.PS, nil)
		ms := runOne(b, name, asdsim.MS, nil)
		pms := runOne(b, name, asdsim.PMS, nil)
		pmsNP += asdsim.Gain(np, pms)
		msNP += asdsim.Gain(np, ms)
		pmsPS += asdsim.Gain(ps, pms)
	}
	n := float64(len(names))
	return pmsNP / n, msNP / n, pmsPS / n
}

func BenchmarkFig02SLH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runOne(b, "GemsFDTD", asdsim.MS, nil)
		b.ReportMetric(100*res.LastEpochSLH.Frac(2), "len2-reads-%")
	}
}

func BenchmarkFig03SLHPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runOne(b, "GemsFDTD", asdsim.MS, func(c *asdsim.Config) { c.ASD.KeepHistory = true })
		// Headline: how widely per-epoch SLHs swing around the mean
		// (max pairwise L1 distance between epochs).
		var maxD float64
		hs := res.EpochSLHs
		for i := 0; i < len(hs); i++ {
			for j := i + 1; j < len(hs); j++ {
				if d := hs[i].L1Distance(hs[j]); d > maxD {
					maxD = d
				}
			}
		}
		b.ReportMetric(maxD, "max-epoch-L1-dist")
	}
}

func BenchmarkFig05SPEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pmsNP, msNP, pmsPS := suiteGains(b, asdsim.SPEC2006FP)
		b.ReportMetric(pmsNP, "PMSvsNP-%")
		b.ReportMetric(msNP, "MSvsNP-%")
		b.ReportMetric(pmsPS, "PMSvsPS-%")
	}
}

func BenchmarkFig06NAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pmsNP, msNP, pmsPS := suiteGains(b, asdsim.NAS)
		b.ReportMetric(pmsNP, "PMSvsNP-%")
		b.ReportMetric(msNP, "MSvsNP-%")
		b.ReportMetric(pmsPS, "PMSvsPS-%")
	}
}

func BenchmarkFig07Commercial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pmsNP, msNP, pmsPS := suiteGains(b, asdsim.Commercial)
		b.ReportMetric(pmsNP, "PMSvsNP-%")
		b.ReportMetric(msNP, "MSvsNP-%")
		b.ReportMetric(pmsPS, "PMSvsPS-%")
	}
}

// powerDelta measures the figure-8/9/10 PMS-vs-PS DRAM power and energy
// deltas over a suite.
func powerDelta(b *testing.B, suite asdsim.Suite) (powerInc, energyRed float64) {
	b.Helper()
	names := asdsim.SuiteBenchmarks(suite)
	for _, name := range names {
		ps := runOne(b, name, asdsim.PS, nil)
		pms := runOne(b, name, asdsim.PMS, nil)
		powerInc += 100 * (pms.DRAM.AvgPowerWatts/ps.DRAM.AvgPowerWatts - 1)
		energyRed += 100 * (1 - pms.DRAM.EnergyNJ/ps.DRAM.EnergyNJ)
	}
	n := float64(len(names))
	return powerInc / n, energyRed / n
}

func BenchmarkFig08PowerSPEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, e := powerDelta(b, asdsim.SPEC2006FP)
		b.ReportMetric(p, "power-increase-%")
		b.ReportMetric(e, "energy-reduction-%")
	}
}

func BenchmarkFig09PowerNAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, e := powerDelta(b, asdsim.NAS)
		b.ReportMetric(p, "power-increase-%")
		b.ReportMetric(e, "energy-reduction-%")
	}
}

func BenchmarkFig10PowerCommercial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, e := powerDelta(b, asdsim.Commercial)
		b.ReportMetric(p, "power-increase-%")
		b.ReportMetric(e, "energy-reduction-%")
	}
}

func BenchmarkFig11Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var adaptiveVsFixed, asdVsNextLine float64
		for _, name := range asdsim.FocusBenchmarks() {
			base := runOne(b, name, asdsim.PMS, nil)
			fixed1 := runOne(b, name, asdsim.PMS, func(c *asdsim.Config) { c.Sched.Fixed = core.PolicyIdleSystem })
			nl := runOne(b, name, asdsim.PMS, func(c *asdsim.Config) { c.Engine = asdsim.EngineNextLine })
			adaptiveVsFixed += 100 * (float64(fixed1.Cycles)/float64(base.Cycles) - 1)
			asdVsNextLine += 100 * (float64(nl.Cycles)/float64(base.Cycles) - 1)
		}
		n := float64(len(asdsim.FocusBenchmarks()))
		b.ReportMetric(adaptiveVsFixed/n, "adaptive-vs-fixed1-%")
		b.ReportMetric(asdVsNextLine/n, "asd-vs-nextline-%")
	}
}

func BenchmarkFig12StreamMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var shortMass float64
		for _, name := range asdsim.FocusBenchmarks() {
			res := runOne(b, name, asdsim.MS, nil)
			for l := 1; l <= 5; l++ {
				shortMass += res.ApproxLengths.Frac(l)
			}
		}
		b.ReportMetric(100*shortMass/float64(len(asdsim.FocusBenchmarks())), "len1-5-stream-%")
	}
}

func BenchmarkFig13Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var useful, coverage, delayed float64
		for _, name := range asdsim.FocusBenchmarks() {
			res := runOne(b, name, asdsim.PMS, nil)
			useful += res.UsefulPrefetchFrac
			coverage += res.Coverage
			delayed += res.DelayedRegularFrac
		}
		n := float64(len(asdsim.FocusBenchmarks()))
		b.ReportMetric(100*useful/n, "useful-%")
		b.ReportMetric(100*coverage/n, "coverage-%")
		b.ReportMetric(100*delayed/n, "delayed-%")
	}
}

func BenchmarkFig14PBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := runOne(b, "milc", asdsim.PMS, func(c *asdsim.Config) { c.MC.PBLines = 8 })
		big := runOne(b, "milc", asdsim.PMS, func(c *asdsim.Config) { c.MC.PBLines = 1024 })
		b.ReportMetric(float64(small.Cycles)/float64(big.Cycles), "pb8-vs-pb1024-slowdown")
	}
}

func BenchmarkFig15SFSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := runOne(b, "milc", asdsim.PMS, func(c *asdsim.Config) { c.ASD.Filter.Slots = 4 })
		big := runOne(b, "milc", asdsim.PMS, func(c *asdsim.Config) { c.ASD.Filter.Slots = 64 })
		b.ReportMetric(float64(small.Cycles)/float64(big.Cycles), "sf4-vs-sf64-slowdown")
	}
}

func BenchmarkFig16SLHAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runOne(b, "GemsFDTD", asdsim.MS, nil)
		b.ReportMetric(res.TrueLengths.L1Distance(res.ApproxLengths), "L1-distance")
	}
}

func BenchmarkSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		smt := func(c *asdsim.Config) {
			c.Threads = 2
			c.InstrBudget = benchBudget / 2
		}
		np := runOne(b, "milc", asdsim.NP, smt)
		pms := runOne(b, "milc", asdsim.PMS, smt)
		b.ReportMetric(asdsim.Gain(np, pms), "smt-PMSvsNP-%")
	}
}

func BenchmarkSchedulerInteraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gain := func(k mc.SchedulerKind) float64 {
			np := runOne(b, "milc", asdsim.NP, func(c *asdsim.Config) { c.MC.Scheduler = k })
			pms := runOne(b, "milc", asdsim.PMS, func(c *asdsim.Config) { c.MC.Scheduler = k })
			return asdsim.Gain(np, pms)
		}
		ahb := gain(mc.SchedAHB)
		inorder := gain(mc.SchedInOrder)
		b.ReportMetric(ahb-inorder, "ahb-minus-inorder-gain-%")
	}
}

func BenchmarkHWCost(b *testing.B) {
	// Covered analytically; the benchmark exists so every experiment id
	// in DESIGN.md has a bench target. It measures the cost computation
	// itself (it is trivially fast).
	for i := 0; i < b.N; i++ {
		runHWCost(b)
	}
}

func BenchmarkExtensionMultiline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d1 := runOne(b, "bwaves", asdsim.MS, nil)
		d4 := runOne(b, "bwaves", asdsim.MS, func(c *asdsim.Config) { c.ASD.MaxDegree = 4 })
		b.ReportMetric(asdsim.Gain(d1, d4), "degree4-vs-degree1-%")
	}
}
