module asdsim

go 1.22
